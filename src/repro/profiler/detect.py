"""Progress-period detection over window statistics (§2.4, second stage).

The paper's algorithm, for loop granularity ``(x, y)`` — windows of ``x``
instructions, periods of at least ``y`` instructions:

    The overall application runtime is decomposed into consecutive runtime
    periods p0, p1, ..., pn.  Then for each y/x consecutive execution
    periods, say pi ... p(i+y-1), if their runtime statistics are
    sufficiently similar based on a predetermined threshold, these
    execution periods can be determined to be the beginning of a
    significant repetition.  The loop is then extended by considering
    p(i+y), p(i+y+1), etc., until a period pj is reached that has
    significantly different behavior.  [...]  The whole process starts by
    examining the y/x consecutive periods starting at p1.  If p1...pj is
    identified to be a progress period, the next y/x periods starting at
    p(j+1) are examined; otherwise the next y/x periods starting at p2 are
    examined.  The whole process repeats until the last period pn has been
    examined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.progress_period import ReuseLevel
from ..mem.working_set import WindowStats, reuse_level_of_ratio
from .sampling import WindowProfile

__all__ = ["DetectorConfig", "DetectedPeriod", "detect_periods"]


@dataclass(frozen=True)
class DetectorConfig:
    """Granularity and similarity settings of the detector.

    Attributes:
        min_period_instructions: the paper's ``y`` — a repetition shorter
            than this is not worth a progress period.
        similarity_tolerance: the "predetermined threshold" for two windows
            to be sufficiently similar (relative difference of WSS and
            reuse ratio).
    """

    min_period_instructions: int = 4_000_000
    similarity_tolerance: float = 0.25

    def min_windows(self, window_instructions: int) -> int:
        """The paper's ``y/x``: windows required to open a period."""
        k = -(-self.min_period_instructions // window_instructions)  # ceil
        return max(2, k)


@dataclass(frozen=True)
class DetectedPeriod:
    """One detected progress period (a run of similar windows)."""

    first_window: int
    last_window: int  # inclusive
    wss_bytes: float
    reuse_ratio: float
    window_instructions: int

    @property
    def n_windows(self) -> int:
        return self.last_window - self.first_window + 1

    @property
    def instructions(self) -> int:
        return self.n_windows * self.window_instructions

    @property
    def reuse_level(self) -> ReuseLevel:
        return reuse_level_of_ratio(self.reuse_ratio)


def _run_is_similar(
    windows: tuple[WindowStats, ...], start: int, count: int, tol: float
) -> bool:
    """All ``count`` windows from ``start`` mutually similar to the first."""
    anchor = windows[start]
    return all(
        windows[start + k].similar_to(anchor, tol) for k in range(1, count)
    )


def detect_periods(
    profile: WindowProfile,
    config: Optional[DetectorConfig] = None,
) -> list[DetectedPeriod]:
    """Find all progress periods in a window profile.

    Returns periods ordered by first window.  Resource demands are set "by
    averaging the metrics from all windows that make up the progress
    period" (§2.4).
    """
    config = config or DetectorConfig()
    windows = profile.windows
    n = len(windows)
    need = config.min_windows(profile.window_instructions)
    tol = config.similarity_tolerance
    periods: list[DetectedPeriod] = []
    i = 0
    while i + need <= n:
        if not _run_is_similar(windows, i, need, tol):
            i += 1  # "otherwise the next y/x periods starting at p(i+1)"
            continue
        anchor = windows[i]
        j = i + need
        while j < n and windows[j].similar_to(anchor, tol):
            j += 1
        span = windows[i:j]
        periods.append(
            DetectedPeriod(
                first_window=i,
                last_window=j - 1,
                wss_bytes=float(np.mean([w.wss_bytes for w in span])),
                reuse_ratio=float(np.mean([w.reuse_ratio for w in span])),
                window_instructions=profile.window_instructions,
            )
        )
        i = j  # "the next y/x periods starting at p(j+1)"
    return periods
