"""The preliminary profiler of §2.4 (PIN replacement).

Pipeline, exactly as the paper describes it:

1. :mod:`repro.profiler.sampling` — collect runtime virtual addresses from
   each load/store within fixed-size sampling windows; per window compute
   the memory footprint, working-set size (entries touched at least a
   configured number of times) and reuse ratio (average touches per entry).
2. :mod:`repro.profiler.detect` — find progress periods as maximal runs of
   sufficiently similar consecutive windows, at a granularity given by the
   window size ``x`` and minimum period length ``y``.
3. :mod:`repro.profiler.loopmap` — map detected periods onto the binary's
   loop-nest structure via the sampled JMP addresses (Dyninst ParseAPI
   substitute); the outermost containing loop bounds the period.
4. :mod:`repro.profiler.regression` — predict working-set size across input
   scales with a logarithmic regression (figure 12).
5. :mod:`repro.profiler.annotate` — turn a profile into the ``pp_begin``
   annotations an application (here: a workload model) would carry.
"""

from .sampling import WindowProfile, sample_windows
from .detect import DetectedPeriod, detect_periods, DetectorConfig
from .loopmap import Loop, LoopNest, SyntheticBinary, map_period_to_loop
from .regression import LogRegression, fit_log_regression, prediction_accuracy
from .annotate import period_annotation, annotate_workload_phase
from .pipeline import ApplicationProfile, ProfilerPipeline, ScalingStudy

__all__ = [
    "ApplicationProfile",
    "ProfilerPipeline",
    "ScalingStudy",
    "WindowProfile",
    "sample_windows",
    "DetectedPeriod",
    "detect_periods",
    "DetectorConfig",
    "Loop",
    "LoopNest",
    "SyntheticBinary",
    "map_period_to_loop",
    "LogRegression",
    "fit_log_regression",
    "prediction_accuracy",
    "period_annotation",
    "annotate_workload_phase",
]
