"""repro — reproduction of "Improving Resource Utilization through Demand
Aware Process Scheduling" (Nesterenko, Yi & Rao, ICPP 2018).

The package implements the paper's demand-aware scheduling extension
(:mod:`repro.core`) on top of a simulated Linux-like kernel and Xeon
E5-2420 machine model (:mod:`repro.sim`, :mod:`repro.mem`,
:mod:`repro.energy`, :mod:`repro.perf`), the profiler that extracts
progress periods (:mod:`repro.profiler`), the evaluated workloads
(:mod:`repro.workloads`) and the experiment harness regenerating every
table and figure (:mod:`repro.experiments`).

Quickstart::

    from repro import run_workload, StrictPolicy, workload_by_name

    report = run_workload(workload_by_name("Water_nsq"), StrictPolicy())
    print(report.describe())
"""

from .config import MachineConfig, default_machine_config, E5_2420
from .core import (
    CompromisePolicy,
    ProgressPeriodApi,
    RdaScheduler,
    ResourceKind,
    ReuseLevel,
    StrictPolicy,
)
from .experiments.runner import run_workload, run_policies, POLICIES
from .perf import PerfReport
from .sim import Kernel
from .workloads import Workload, table2_workloads, workload_by_name

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "default_machine_config",
    "E5_2420",
    "CompromisePolicy",
    "StrictPolicy",
    "RdaScheduler",
    "ProgressPeriodApi",
    "ResourceKind",
    "ReuseLevel",
    "run_workload",
    "run_policies",
    "POLICIES",
    "PerfReport",
    "Kernel",
    "Workload",
    "table2_workloads",
    "workload_by_name",
    "__version__",
]
