"""Online working-set-size estimation (closing the loop on §4.4).

The paper's profiler fits ``wss = a + b·ln(input)`` *offline* over the
first three input scales (:mod:`repro.profiler.regression`).  The serving
layer, however, admits progress periods on whatever demand the client
*declares* — and clients lie, both ways.  This module reuses the same
logarithmic model online: every completed period contributes an
``(declared, observed)`` sample, and once a key has enough history the
estimator predicts the true working set from the declared demand (the
declared size plays the role of the profiler's "input size": it is the
only a-priori signal of scale the service gets).

Design points:

* **Per-key state.**  Keys are ``(client_id, sharing_key-or-label)``
  tuples; a working set is a property of the code phase, not of a single
  connection, so anonymous sessions share the ``""`` client bucket.
* **Ring-buffered history.**  Only the newest ``history`` samples per key
  are kept, so drifting workloads re-learn and memory stays bounded.
* **Minimum-sample and confidence gates.**  Below ``min_samples``
  observations — or while recent predictions have mostly fallen outside
  the error band — ``predict`` returns ``None`` and the caller falls back
  to the declared demand.
* **Bounded predictions.**  The regression output is clamped to the
  ``[min(observed), max(observed)]`` range of the current window: a
  log-curve extrapolated far outside its support is noise, and the clamp
  also makes predictions provably bounded and monotone-preserving (the
  property tests rely on this).

The estimator is deliberately transport-free: the admission service owns
journaling and metric emission.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from ..errors import ProfilerError
from ..profiler.regression import LogRegression, fit_log_regression

__all__ = ["OnlineWssEstimator", "EstimatorKey"]

#: (client_id, sharing_key-or-label) — see module docstring.
EstimatorKey = Tuple[str, str]


class OnlineWssEstimator:
    """Incremental per-key ``wss = a + b·ln(declared)`` estimator."""

    def __init__(
        self,
        history: int = 32,
        min_samples: int = 3,
        error_band: float = 0.25,
        confidence_window: int = 8,
        min_confidence: float = 0.5,
    ) -> None:
        if history < 2:
            raise ValueError("history must be >= 2")
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2 (regression needs 2 points)")
        if error_band <= 0:
            raise ValueError("error_band must be positive")
        self.history = history
        self.min_samples = min_samples
        self.error_band = error_band
        self.confidence_window = confidence_window
        self.min_confidence = min_confidence
        self._samples: Dict[EstimatorKey, Deque[Tuple[int, int]]] = {}
        #: rolling record of recent |relative error| per key, fed back by
        #: the misprediction detector via note_error()
        self._errors: Dict[EstimatorKey, Deque[float]] = {}
        #: newest declared demand per key — the input to hello placement hints
        self._last_declared: Dict[EstimatorKey, int] = {}
        #: cached fit per key, invalidated on observe()
        self._fits: Dict[EstimatorKey, Optional[LogRegression]] = {}

    # ------------------------------------------------------------------ ingest

    def observe(self, key: EstimatorKey, declared_bytes: int, observed_bytes: int) -> None:
        """Record one completed period's (declared, observed) demand pair.

        Before the sample is absorbed, the model trained on the *prior*
        samples is scored against it (prequential evaluation) and the
        error feeds the confidence gate.  Scoring the model's own
        prediction — not the admission decision — is what lets confidence
        recover after a drift: the admission error stays large exactly
        while predictions are suppressed, so gating on it would deadlock.
        """
        if declared_bytes <= 0 or observed_bytes <= 0:
            return  # zero-demand periods carry no working-set information
        prior = self._predict_value(key, int(declared_bytes))
        if prior is not None:
            self.note_error(key, (prior - observed_bytes) / observed_bytes)
        ring = self._samples.get(key)
        if ring is None:
            ring = self._samples[key] = deque(maxlen=self.history)
        ring.append((int(declared_bytes), int(observed_bytes)))
        self._fits.pop(key, None)

    def note_error(self, key: EstimatorKey, rel_error: float) -> None:
        """Feed back a prediction's relative error (from the detector)."""
        ring = self._errors.get(key)
        if ring is None:
            ring = self._errors[key] = deque(maxlen=self.confidence_window)
        ring.append(abs(rel_error))

    # ----------------------------------------------------------------- predict

    def sample_count(self, key: EstimatorKey) -> int:
        ring = self._samples.get(key)
        return len(ring) if ring else 0

    def confidence(self, key: EstimatorKey) -> float:
        """Fraction of recently-observed errors inside the error band.

        1.0 when no feedback has arrived yet — a fresh model is trusted
        until the detector says otherwise.
        """
        ring = self._errors.get(key)
        if not ring:
            return 1.0
        within = sum(1 for e in ring if e <= self.error_band)
        return within / len(ring)

    def predict(self, key: EstimatorKey, declared_bytes: int) -> Optional[int]:
        """Predicted working-set bytes, or ``None`` → use the declared demand.

        ``None`` is returned below the minimum-sample gate, below the
        confidence gate, or for non-positive declared demands.
        """
        if declared_bytes <= 0:
            return None
        if self.confidence(key) < self.min_confidence:
            return None
        value = self._predict_value(key, int(declared_bytes))
        if value is not None:
            self._last_declared[key] = int(declared_bytes)
        return value

    def _predict_value(
        self, key: EstimatorKey, declared_bytes: int
    ) -> Optional[int]:
        """Model output without the confidence gate (also the self-score
        path in :meth:`observe`, which must bypass that gate)."""
        ring = self._samples.get(key)
        if ring is None or len(ring) < self.min_samples:
            return None
        fit = self._fit(key)
        lo = min(y for _, y in ring)
        hi = max(y for _, y in ring)
        if fit is None:
            value = (lo + hi) / 2.0
        else:
            try:
                value = float(fit.predict(float(declared_bytes)))
            except ProfilerError:
                return None
        clamped = min(max(value, float(lo)), float(hi))
        return max(1, int(round(clamped)))

    def _fit(self, key: EstimatorKey) -> Optional[LogRegression]:
        if key in self._fits:
            return self._fits[key]
        ring = self._samples[key]
        xs = [float(x) for x, _ in ring]
        ys = [float(y) for _, y in ring]
        try:
            fit: Optional[LogRegression] = fit_log_regression(xs, ys)
        except ProfilerError:
            fit = None
        self._fits[key] = fit
        return fit

    def predicted_for_client(self, client_id: str) -> Optional[int]:
        """Largest confident prediction across a client's keys.

        Feeds the ``hello`` reply's placement hint: a frontend placing
        this client wants its peak expected footprint.
        """
        best: Optional[int] = None
        for key, declared in self._last_declared.items():
            if key[0] != client_id:
                continue
            value = self.predict(key, declared)
            if value is not None and (best is None or value > best):
                best = value
        return best

    # ------------------------------------------------------------ persistence

    def export_samples(self) -> Iterator[Tuple[EstimatorKey, int, int]]:
        """All retained samples in per-key insertion order (for snapshots)."""
        for key, ring in self._samples.items():
            for declared, observed in ring:
                yield key, declared, observed

    def load_samples(
        self, samples: List[Tuple[EstimatorKey, int, int]]
    ) -> None:
        """Re-feed journaled samples (replay order preserves recency)."""
        for key, declared, observed in samples:
            self.observe(tuple(key), declared, observed)  # type: ignore[arg-type]
