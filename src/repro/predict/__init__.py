"""Online demand prediction and elastic re-admission.

Three transport-free pieces the admission service composes when started
with ``--predict`` (see docs/PREDICTION.md):

* :class:`OnlineWssEstimator` — per-(client, sharing-key) incremental
  ``wss = a + b·ln(declared)`` regression over observed demand samples;
* :class:`MispredictDetector` — classifies charged-vs-observed divergence
  at period close against a relative-error band;
* :class:`ElasticController` — hysteresis-gated shrink/grow decisions for
  running reservations.
"""

from .controller import ElasticController, ElasticDecision
from .detector import Misprediction, MispredictDetector
from .estimator import EstimatorKey, OnlineWssEstimator

__all__ = [
    "ElasticController",
    "ElasticDecision",
    "EstimatorKey",
    "Misprediction",
    "MispredictDetector",
    "OnlineWssEstimator",
]
