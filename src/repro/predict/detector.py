"""Misprediction detection at period close.

When a period ends, the service knows two numbers: the bytes it *charged*
to the resource ledger (the declared demand, or the estimator's prediction
when ``--predict`` admitted on one) and the working set the client
*actually observed* (the optional ``observed_bytes`` field on ``pp_end``).
The detector compares them, classifies the error against a relative-error
band, and hands the signed relative error back so the estimator's
confidence gate and the elastic controller can react.

Direction convention (from the resource's point of view):

* ``over``  — charged > observed: the reservation was too large; capacity
  sat idle that waiters could have used.
* ``under`` — charged < observed: the reservation was too small; the
  period overflowed its partition (the paper's "performance interference"
  failure mode).
* ``ok``    — within the band.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Misprediction", "MispredictDetector"]

#: cap on |relative error| so a zero-observed pathological sample cannot
#: push infinities into histograms or the controller
_REL_ERROR_CAP = 1e6


@dataclass(frozen=True)
class Misprediction:
    """One classified prediction-vs-reality comparison."""

    direction: str  # "over" | "under" | "ok"
    rel_error: float  # signed: (charged - observed) / observed
    charged_bytes: int
    observed_bytes: int

    @property
    def mispredicted(self) -> bool:
        return self.direction != "ok"


class MispredictDetector:
    """Classifies charged-vs-observed divergence beyond a relative band."""

    def __init__(self, error_band: float = 0.25) -> None:
        if error_band <= 0:
            raise ValueError("error_band must be positive")
        self.error_band = error_band

    def classify(self, charged_bytes: int, observed_bytes: int) -> Misprediction:
        charged = max(0, int(charged_bytes))
        observed = max(0, int(observed_bytes))
        if observed == 0:
            rel = 0.0 if charged == 0 else _REL_ERROR_CAP
        else:
            rel = (charged - observed) / observed
            rel = max(-_REL_ERROR_CAP, min(_REL_ERROR_CAP, rel))
        if rel > self.error_band:
            direction = "over"
        elif rel < -self.error_band:
            direction = "under"
        else:
            direction = "ok"
        return Misprediction(
            direction=direction,
            rel_error=rel,
            charged_bytes=charged,
            observed_bytes=observed,
        )
