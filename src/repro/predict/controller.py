"""Elastic re-admission decisions with hysteresis.

The controller turns a stream of per-key misprediction classifications
into discrete *elastic actions*:

* sustained **over**-prediction → ``shrink``: the key's running
  reservations are larger than its real working set; resizing them down
  releases headroom that immediately admits parked waiters;
* sustained **under**-prediction → ``grow``: the reservations are too
  small and the working set is overflowing; grow them if the policy bound
  allows (if not, the larger learned demand simply parks the key's *next*
  period — the admission predicate does that for free).

"Sustained" means ``hysteresis`` *consecutive* classifications in the
same direction: a single noisy sample never moves a reservation, and the
streak resets after every action (and on any ``ok`` sample), so
reservations cannot thrash between grow and shrink on alternating noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable

from .detector import Misprediction

__all__ = ["ElasticController", "ElasticDecision"]


@dataclass
class _Streak:
    direction: str = "ok"
    length: int = 0


@dataclass(frozen=True)
class ElasticDecision:
    """What the controller wants done to a key's running reservations."""

    key: Hashable
    action: str  # "shrink" | "grow"
    #: the misprediction that tripped the hysteresis threshold
    trigger: Misprediction


class ElasticController:
    """Per-key directional streak counter with reset-after-act."""

    def __init__(self, hysteresis: int = 2) -> None:
        if hysteresis < 1:
            raise ValueError("hysteresis must be >= 1")
        self.hysteresis = hysteresis
        self._streaks: Dict[Hashable, _Streak] = {}

    def update(self, key: Hashable, sample: Misprediction) -> ElasticDecision | None:
        """Fold one classified sample in; maybe emit an action."""
        streak = self._streaks.get(key)
        if streak is None:
            streak = self._streaks[key] = _Streak()
        if sample.direction == "ok":
            streak.direction = "ok"
            streak.length = 0
            return None
        if sample.direction == streak.direction:
            streak.length += 1
        else:
            streak.direction = sample.direction
            streak.length = 1
        if streak.length < self.hysteresis:
            return None
        # act, then reset so the next action needs a fresh streak
        streak.direction = "ok"
        streak.length = 0
        action = "shrink" if sample.direction == "over" else "grow"
        return ElasticDecision(key=key, action=action, trigger=sample)

    def forget(self, key: Hashable) -> None:
        self._streaks.pop(key, None)
