"""Core execution model: from phase parameters and LLC contention to rates.

This is where the analytical memory model turns into time.  For a thread in
a compute phase with hot fraction ``h`` (from
:class:`repro.mem.contention.SharedLlcModel`):

* LLC references per instruction  ``l = mem_refs_per_instr · llc_refs_per_memref``
* DRAM accesses per instruction   ``d = l · (1 − reuse · h)``
* stall seconds per instruction   ``(d · t_dram + (l − d) · t_llc) · (1 − overlap)``
* seconds per instruction         ``cycle / base_ipc + stall``

The model also prices the two scheduler-induced costs the paper's evaluation
hinges on:

* **cold-cache reload** after a context switch (figure 1): the incoming
  thread refetches ``min(wss, share)`` bytes at DRAM bandwidth, and
* **progress-tracking overhead** (figure 11): each begin/end pair costs a
  kernel round-trip, bounded per sub-period by a saturation fraction —
  back-to-back notifications coalesce, so tracking can slow a phase by at
  most ``pp_overhead_cap`` no matter how fine the granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig
from ..mem.contention import ContentionPoint
from ..workloads.base import Phase

__all__ = ["ExecRate", "ReloadCost", "ExecutionModel", "PP_OVERHEAD_CAP"]

#: Saturation bound on progress-tracking slowdown (see module docstring).
PP_OVERHEAD_CAP = 0.59


@dataclass(frozen=True)
class ExecRate:
    """Per-instruction execution rates of one thread in its current phase."""

    seconds_per_instr: float
    dram_per_instr: float
    llc_refs_per_instr: float
    hot_fraction: float

    @property
    def ipc(self) -> float:
        return 0.0 if self.seconds_per_instr == 0 else 1.0 / self.seconds_per_instr


@dataclass(frozen=True)
class ReloadCost:
    """Cost of re-warming a thread's working set after a context switch."""

    seconds: float
    dram_accesses: float


class ExecutionModel:
    """Derives execution rates from machine config + contention points."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self._base_spi = config.cpu.cycle_s / config.cpu.base_ipc
        self._stall_scale = 1.0 - config.cpu.memory_overlap

    # ------------------------------------------------------------------
    def rate(
        self,
        phase: Phase,
        point: ContentionPoint,
        tracking_overhead: float = 0.0,
        freq_scale: float = 1.0,
    ) -> ExecRate:
        """Execution rate of a phase at a given contention point.

        Args:
            tracking_overhead: fractional slowdown from progress-period
                tracking (0 when untracked; see :meth:`pp_overhead_fraction`).
            freq_scale: DVFS frequency scale in (0, 1]; slows the pipeline
                term but not memory latency, so scaling down costs
                compute-bound code more than memory-bound code.
        """
        cfg = self.config
        llc_pi = phase.mem_refs_per_instr * phase.llc_refs_per_memref
        p_hit = phase.reuse * point.hot_fraction
        dram_pi = llc_pi * (1.0 - p_hit)
        llc_hit_pi = llc_pi - dram_pi
        stall_scale = (
            self._stall_scale
            if phase.memory_overlap is None
            else 1.0 - phase.memory_overlap
        )
        stall = (
            dram_pi * cfg.memory.latency_s + llc_hit_pi * cfg.llc.latency_s
        ) * stall_scale
        spi = (self._base_spi / freq_scale + stall) * (1.0 + tracking_overhead)
        return ExecRate(
            seconds_per_instr=spi,
            dram_per_instr=dram_pi,
            llc_refs_per_instr=llc_pi,
            hot_fraction=point.hot_fraction,
        )

    def solo_rate(self, phase: Phase) -> ExecRate:
        """Rate with the LLC all to itself (for calibration and tests)."""
        from ..mem.contention import LlcDemand, SharedLlcModel

        model = SharedLlcModel(self.config.llc_capacity)
        point = model.resolve([LlcDemand(phase.wss_bytes, phase.reuse)])[0]
        return self.rate(phase, point)

    # ------------------------------------------------------------------
    def reload_cost(self, phase: Phase, point: ContentionPoint) -> ReloadCost:
        """Cold-cache reload after the phase's owner is switched onto a core.

        The thread can at best re-warm its LLC *share*; data beyond the
        share would be evicted again, and its cost is already captured by
        the steady-state miss rate.  Only the *reusable* fraction of the
        working set is worth re-warming — a streaming phase loses nothing
        by being switched out, so its reload is proportionally cheap.
        """
        bytes_to_load = min(phase.wss_bytes, point.share_bytes) * phase.reuse
        seconds = bytes_to_load / self.config.memory.bandwidth_bytes_per_s
        accesses = bytes_to_load / self.config.llc.line_bytes
        return ReloadCost(seconds=seconds, dram_accesses=accesses)

    # ------------------------------------------------------------------
    def apply_bandwidth_cap(self, rates: list[ExecRate]) -> list[ExecRate]:
        """Throttle co-running threads so aggregate DRAM traffic fits the bus.

        The latency model alone lets N streaming threads demand N times the
        memory bandwidth.  When the aggregate demand ``Σ dram_i / spi_i ·
        line`` exceeds the sustained bandwidth, every DRAM access queues for
        an extra delay ``x``; we solve for the unique ``x ≥ 0`` at which the
        achieved traffic equals the bus limit (the classic M/D/1-style
        saturation closure, monotone in ``x`` so bisection converges fast).

        This is what makes figure 13's largest input flat from 6 to 12
        instances: "at 6 processes, the performance becomes memory bound".
        """
        line = self.config.llc.line_bytes
        bw = self.config.memory.bandwidth_bytes_per_s
        max_accesses_per_s = bw / line

        def achieved(extra_delay: float) -> float:
            return sum(
                r.dram_per_instr / (r.seconds_per_instr + r.dram_per_instr * extra_delay)
                for r in rates
                if r.dram_per_instr > 0.0
            )

        if achieved(0.0) <= max_accesses_per_s:
            return rates
        lo, hi = 0.0, self.config.memory.latency_s
        while achieved(hi) > max_accesses_per_s:
            hi *= 2.0
            if hi > 1.0:  # pragma: no cover - unphysical
                break
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            if achieved(mid) > max_accesses_per_s:
                lo = mid
            else:
                hi = mid
        x = hi
        return [
            ExecRate(
                seconds_per_instr=r.seconds_per_instr + r.dram_per_instr * x,
                dram_per_instr=r.dram_per_instr,
                llc_refs_per_instr=r.llc_refs_per_instr,
                hot_fraction=r.hot_fraction,
            )
            for r in rates
        ]

    def pp_overhead_fraction(self, phase: Phase, warm_spi: float) -> float:
        """Fractional slowdown from tracking the phase's progress periods.

        A phase broken into ``N`` sub-periods (figure 11) crosses ``N``
        begin/end pairs.  Each pair costs two kernel calls, but never more
        than ``PP_OVERHEAD_CAP`` of the sub-period's own work — when calls
        arrive faster than the kernel consumes notifications they coalesce,
        bounding the slowdown.
        """
        if phase.pp is None:
            return 0.0
        n = phase.pp.subperiods
        work_s = phase.instructions * warm_spi
        if work_s <= 0.0:
            return 0.0
        pair_cost = 2.0 * self.config.scheduler.pp_call_overhead_s
        per_sub_cap = PP_OVERHEAD_CAP * work_s / n
        return n * min(pair_cost, per_sub_cap) / work_s
