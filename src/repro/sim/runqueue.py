"""Run queue ordered by virtual runtime.

The substrate uses a single global queue (a deliberate simplification of
per-CPU queues plus load balancing — with symmetric cores and no affinity,
the steady state is the same and the simulation stays deterministic).
Equal-vruntime ties are broken by a multiplicative hash of the tid rather
than the tid itself: consecutive tids belong to threads of one process
(they are created together), and raw-tid ordering would systematically
co-schedule siblings — an artificial grouping a real SMP scheduler, with
its per-CPU queues and noisy wakeup timing, does not exhibit.
"""

from __future__ import annotations

import heapq
from typing import Optional

from ..errors import SchedulerError
from .process import Thread

__all__ = ["RunQueue"]


def _mix(seq: int) -> int:
    """Fibonacci-hash a launch sequence number to decorrelate queue order
    from creation order."""
    return (seq * 2654435761) & 0xFFFFFFFF


class RunQueue:
    """Min-heap of runnable threads ordered by virtual runtime."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Thread]] = []
        self._enqueued: set[int] = set()

    def __len__(self) -> int:
        return len(self._enqueued)

    def __contains__(self, thread: Thread) -> bool:
        return thread.tid in self._enqueued

    def push(self, thread: Thread) -> None:
        if thread.tid in self._enqueued:
            raise SchedulerError(f"thread {thread.tid} already enqueued")
        self._enqueued.add(thread.tid)
        heapq.heappush(
            self._heap, (thread.vruntime, _mix(thread.queue_seq), thread.tid, thread)
        )

    def pop(self) -> Optional[Thread]:
        """Remove and return the thread with minimum vruntime."""
        while self._heap:
            _, _, tid, thread = heapq.heappop(self._heap)
            if tid in self._enqueued:
                self._enqueued.discard(tid)
                return thread
            # else: stale entry for a thread removed out-of-band
        return None

    def remove(self, thread: Thread) -> bool:
        """Lazily remove a specific thread (e.g. it exited while queued)."""
        if thread.tid in self._enqueued:
            self._enqueued.discard(thread.tid)
            return True
        return False

    def min_vruntime(self) -> Optional[float]:
        while self._heap and self._heap[0][2] not in self._enqueued:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None
