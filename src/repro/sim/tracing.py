"""Kernel event tracing and timeline rendering.

A :class:`KernelTracer` records scheduling events (dispatches, preemptions,
progress-period transitions, waits and wakes) as the simulation runs, like
``perf sched record``.  :func:`render_timeline` turns the trace into an
ASCII Gantt chart — the visual of the paper's figure 1, generated from an
actual simulation rather than drawn by hand.

Attach a tracer before launching work::

    kernel = Kernel(extension=scheduler)
    tracer = KernelTracer()
    kernel.tracer = tracer
    kernel.launch(workload)
    kernel.run()
    print(render_timeline(tracer, kernel))
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "TraceKind",
    "TraceEvent",
    "KernelTracer",
    "render_timeline",
    "serialize_trace",
]


class TraceKind(enum.Enum):
    DISPATCH = "dispatch"  # thread placed on a core
    PREEMPT = "preempt"  # quantum expired, thread back to queue
    PHASE_DONE = "phase_done"
    PP_BEGIN = "pp_begin"
    PP_DENY = "pp_deny"  # parked on the resource waitlist
    PP_WAKE = "pp_wake"  # resumed by the extension
    BARRIER_WAIT = "barrier_wait"
    BARRIER_RELEASE = "barrier_release"
    EXIT = "exit"


@dataclass(frozen=True)
class TraceEvent:
    """One scheduling event."""

    time_s: float
    kind: TraceKind
    tid: int
    core: Optional[int] = None
    detail: str = ""


class KernelTracer:
    """Accumulates :class:`TraceEvent` records emitted by the kernel."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.events: list[TraceEvent] = []
        self.capacity = capacity
        self.dropped = 0

    def emit(
        self,
        time_s: float,
        kind: TraceKind,
        tid: int,
        core: Optional[int] = None,
        detail: str = "",
    ) -> None:
        self.record(
            TraceEvent(time_s=time_s, kind=kind, tid=tid, core=core, detail=detail)
        )

    def record(self, event: TraceEvent) -> None:
        """Append an already-built event (the kernel's emission path)."""
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(event)

    def of_kind(self, kind: TraceKind) -> list[TraceEvent]:
        return [e for e in self.events if e.kind is kind]

    def of_thread(self, tid: int) -> list[TraceEvent]:
        return [e for e in self.events if e.tid == tid]

    def __len__(self) -> int:
        return len(self.events)


def serialize_trace(tracer: KernelTracer) -> str:
    """Canonical, byte-stable text form of a trace (golden-file regression).

    Thread ids are global counters, so their absolute values depend on how
    many simulations ran earlier in the process; events relabel tids by
    first appearance (``t0``, ``t1``, …) so two identical runs serialize
    identically regardless of history.  Times use ``repr`` (exact float
    round-trip), making any semantic drift in the scheduler — a different
    decision, a shifted timestamp — a visible diff.
    """
    alias: dict[int, str] = {}
    lines = []
    for e in tracer.events:
        tid = alias.setdefault(e.tid, f"t{len(alias)}")
        core = "-" if e.core is None else str(e.core)
        detail = f" {e.detail}" if e.detail else ""
        lines.append(f"{e.time_s!r} {e.kind.value} {tid} core={core}{detail}")
    return "\n".join(lines) + "\n"


def _occupancy(tracer: KernelTracer, n_cores: int, end_time: float):
    """Per-core list of (start, end, tid) occupancy segments."""
    lanes: list[list[tuple[float, float, int]]] = [[] for _ in range(n_cores)]
    running: dict[int, tuple[float, int]] = {}  # core -> (start, tid)
    for e in tracer.events:
        if e.kind is TraceKind.DISPATCH and e.core is not None:
            running[e.core] = (e.time_s, e.tid)
        elif e.kind in (TraceKind.PREEMPT, TraceKind.PP_DENY, TraceKind.BARRIER_WAIT,
                        TraceKind.EXIT):
            if e.core is not None and e.core in running:
                start, tid = running.pop(e.core)
                if tid == e.tid:
                    lanes[e.core].append((start, e.time_s, tid))
                else:  # pragma: no cover - defensive
                    running[e.core] = (start, tid)
    for core, (start, tid) in running.items():
        lanes[core].append((start, end_time, tid))
    return lanes


def render_timeline(
    tracer: KernelTracer,
    kernel,
    width: int = 72,
    label_of=None,
) -> str:
    """ASCII Gantt chart of core occupancy (one row per core).

    Args:
        label_of: optional ``tid -> single char`` labeller; defaults to
            cycling letters by process id so sibling threads share a glyph.
    """
    n_cores = kernel.config.cpu.n_cores
    end = kernel.now
    if end <= 0 or not tracer.events:
        return "(empty timeline)"
    if label_of is None:
        pid_of = {
            t.tid: p.pid for p in kernel.processes for t in p.threads
        }
        alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
        pids = sorted(set(pid_of.values()))
        glyph = {pid: alphabet[i % len(alphabet)] for i, pid in enumerate(pids)}

        def label_of(tid: int) -> str:  # noqa: F811 - intentional default
            return glyph.get(pid_of.get(tid, -1), "?")

    lanes = _occupancy(tracer, n_cores, end)
    scale = width / end
    lines = [f"timeline: {end * 1e3:.2f} ms total, one column = {end / width * 1e3:.3f} ms"]
    for core, segments in enumerate(lanes):
        row = [" "] * width
        for start, stop, tid in segments:
            a = min(width - 1, int(start * scale))
            b = min(width, max(a + 1, int(stop * scale)))
            for x in range(a, b):
                row[x] = label_of(tid)
        lines.append(f"cpu{core:<2} |" + "".join(row) + "|")
    return "\n".join(lines)
