"""The simulated OS kernel.

Owns the cores, the default (CFS-like) scheduler, the syscall surface the
workloads exercise, and the *extension hook* the paper's demand-aware
scheduler plugs into ("our extension exists on top of the underlying Linux
default scheduler, and decides which processes should be run by pausing and
resuming processes only at the beginnings and endings of progress periods").

Execution model
---------------
The kernel advances as a rate-based discrete-event simulation.  Between
events every running thread retires instructions at a cached rate derived
from the current co-running set (see :mod:`repro.sim.cpu`).  Any state
change — a quantum expiring, a phase completing, a thread blocking or waking
— triggers:

1. ``_accrue``  — fold the elapsed interval into counters and energy,
2. the mutation itself,
3. ``_refresh`` — dispatch idle cores, recompute everyone's rates (the
   co-running set changed), and reschedule each core's next event.

Threads that have not provided progress-period information never touch the
extension and are scheduled directly by the default policy, exactly as the
paper specifies.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence

from ..config import MachineConfig, default_machine_config
from ..errors import SchedulerError, SimulationError
from ..mem.contention import LlcDemand
from ..perf.counters import HwCounter
from ..workloads.base import Phase, PhaseKind, ProcessSpec, Workload
from .cfs import CfsScheduler
from .engine import Engine, EventHandle
from .machine import Machine
from .process import Process, Thread, ThreadState
from .tracing import TraceEvent, TraceKind
from .waitqueue import WaitQueue

__all__ = ["AdmissionDecision", "SchedulingExtension", "Kernel"]

#: slack for floating-point time/instruction comparisons
_EPS_INSTR = 1e-6
_EPS_TIME = 1e-12


class AdmissionDecision(enum.Enum):
    RUN = "run"
    WAIT = "wait"


class SchedulingExtension(ABC):
    """Hook a demand-aware scheduler implements to intercept PP transitions."""

    kernel: "Kernel"

    def attach(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    @abstractmethod
    def on_pp_begin(self, thread: Thread, request) -> tuple[int, AdmissionDecision]:
        """A thread entered a progress period.  Return (pp_id, decision)."""

    @abstractmethod
    def on_pp_end(self, thread: Thread, pp_id: int) -> Sequence[Thread]:
        """A progress period completed.  Return threads to wake."""

    def on_thread_exit(self, thread: Thread) -> Sequence[Thread]:
        """A thread died; clean up its periods.  Return threads to wake."""
        return ()


class _CoreState:
    """Book-keeping for one CPU core."""

    __slots__ = ("idx", "thread", "quantum_end", "event", "last_tid")

    def __init__(self, idx: int) -> None:
        self.idx = idx
        self.thread: Optional[Thread] = None
        self.quantum_end = 0.0
        self.event: Optional[EventHandle] = None
        self.last_tid: Optional[int] = None


class Kernel:
    """The simulated operating system."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        engine: Optional[Engine] = None,
        extension: Optional[SchedulingExtension] = None,
        machine: Optional[Machine] = None,
        governor=None,
        sanitize=False,
    ) -> None:
        self.config = config or default_machine_config()
        self.engine = engine or Engine()
        self.machine = machine if machine is not None else Machine(self.config)
        #: optional DVFS governor (repro.energy.dvfs) and its current scale
        self.governor = governor
        self.freq_scale = 1.0
        self._busy_core_seconds = 0.0
        self._governor_started = False
        self.cfs = CfsScheduler(self.config.scheduler, self.config.cpu.n_cores)
        self.extension = extension
        if extension is not None:
            extension.attach(self)
        self.cores = [_CoreState(i) for i in range(self.config.cpu.n_cores)]
        self.processes: list[Process] = []
        self._barriers: Dict[tuple[int, int], WaitQueue] = {}
        self._last_accrual = self.engine.now
        self._pending_switches = 0
        # Memoized output of _recompute_rates.  The co-running set recurs
        # constantly (every quantum rotation cycles through the same handful
        # of placements), and resolve()/rate()/apply_bandwidth_cap() are pure
        # functions of (phases, sharing scopes, freq_scale) — so rates and
        # cache points are keyed on the ordered (id(phase), pid) signature of
        # the running threads.  Phase objects are frozen and outlive the
        # kernel's processes, so ids are stable for the kernel's lifetime.
        self._rate_cache: Dict[tuple, tuple] = {}
        self._RATE_CACHE_MAX = 4096
        self._exited_threads = 0
        self._total_threads = 0
        #: optional KernelTracer recording scheduling events
        self.tracer = None
        self._launch_seq = 0
        #: observers receiving every trace event via ``on_kernel_event``
        #: (the sanitizer subscribes here; see :mod:`repro.sanitizer`)
        self.observers: list = []
        #: runtime invariant checker, when ``sanitize`` was requested
        self.sanitizer = None
        if sanitize:
            from ..sanitizer import KernelSanitizer

            self.sanitizer = (
                sanitize if isinstance(sanitize, KernelSanitizer) else KernelSanitizer()
            )
            self.sanitizer.attach(self)

    # ==================================================================
    # public API
    # ==================================================================
    @property
    def now(self) -> float:
        return self.engine.now

    def launch(self, workload: Workload, at: float = 0.0) -> list[Process]:
        """Create every process of a workload, starting at simulated ``at``."""
        return [self.spawn(spec, at=at) for spec in workload.processes]

    def spawn(self, spec: ProcessSpec, at: float = 0.0) -> Process:
        """Create a process whose threads become runnable at time ``at``."""
        process = Process(spec)
        self.processes.append(process)
        self._total_threads += len(process.threads)
        for thread in process.threads:
            thread.queue_seq = self._launch_seq
            self._launch_seq += 1
        self.engine.schedule_at(
            max(at, self.engine.now), self._start_process, process
        )
        return process

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the simulation until all threads exit (or ``until``)."""
        self.engine.run(until=until, max_events=max_events)
        self._accrue(self.engine.now)
        if until is None and self._exited_threads != self._total_threads:
            raise SimulationError(
                "simulation stalled with live threads:\n" + self.diagnose()
            )
        if self.sanitizer is not None and self.all_exited:
            self.sanitizer.finalize()
            if self.sanitizer.strict:
                self.sanitizer.check()

    @property
    def all_exited(self) -> bool:
        return self._exited_threads == self._total_threads

    def sync(self) -> None:
        """Bring counters and energy up to the current simulated time.

        Call before reading counters or RAPL mid-simulation (the execution
        model folds progress in lazily, at events).
        """
        self._accrue(self.engine.now)

    def _emit(self, kind, thread: Thread, detail: str = "") -> None:
        if self.tracer is None and not self.observers:
            return
        event = TraceEvent(
            time_s=self.engine.now,
            kind=kind,
            tid=thread.tid,
            core=thread.core,
            detail=detail,
        )
        if self.tracer is not None:
            self.tracer.record(event)
        for observer in self.observers:
            observer.on_kernel_event(self, event)

    def diagnose(self) -> str:
        """Describe where every live thread is stuck (deadlock forensics)."""
        lines = []
        for proc in self.processes:
            for t in proc.threads:
                if t.state is ThreadState.EXITED:
                    continue
                phase = t.current_phase
                lines.append(
                    f"  tid={t.tid} {proc.name} state={t.state.value} "
                    f"phase={phase.name if phase else '<done>'} "
                    f"idx={t.phase_idx}"
                )
        return "\n".join(lines) or "  (none)"

    # ==================================================================
    # process / thread lifecycle
    # ==================================================================
    def _governor_tick(self) -> None:
        """Periodic DVFS evaluation (cpufreq sampling)."""
        assert self.governor is not None
        self._accrue(self.engine.now)
        window = self.governor.interval_s * self.config.cpu.n_cores
        utilization = min(1.0, self._busy_core_seconds / window) if window else 0.0
        self._busy_core_seconds = 0.0
        new_scale = self.governor.target_scale(utilization)
        if new_scale != self.freq_scale:
            self.freq_scale = new_scale
            self._refresh()  # rates changed
        if not self.all_exited:
            self.engine.schedule(self.governor.interval_s, self._governor_tick)

    def _start_process(self, process: Process) -> None:
        if self.governor is not None and not self._governor_started:
            self._governor_started = True
            self.engine.schedule(self.governor.interval_s, self._governor_tick)
        self._accrue(self.engine.now)
        for thread in process.threads:
            thread.state_since = self.engine.now
            thread.stats.spawn_time_s = self.engine.now
            if self._enter_phases(thread) == "run":
                thread.set_state(ThreadState.READY, self.engine.now)
                self.cfs.enqueue(thread)
        self._refresh()

    def _exit_thread(self, thread: Thread) -> None:
        self._emit(TraceKind.EXIT, thread)
        thread.set_state(ThreadState.EXITED, self.engine.now)
        thread.stats.exit_time_s = self.engine.now
        self._exited_threads += 1
        if self.extension is not None:
            for woken in self.extension.on_thread_exit(thread):
                self._wake_pp_owner(woken)
        # A shrinking thread group must not strand barrier waiters: if this
        # was the last thread a barrier was waiting on, release it now.
        process = thread.process
        for idx in process.pending_barriers():
            if process.barrier_ready(idx):
                process.barrier_clear(idx)
                self._release_barrier(process, idx)

    # ==================================================================
    # phase machinery
    # ==================================================================
    def _enter_phases(self, thread: Thread) -> str:
        """Process phase entries until the thread can run, parks, or exits.

        Returns ``"run"`` (thread is in an admitted compute phase),
        ``"parked"`` (blocked at a barrier or on the PP waitlist) or
        ``"exited"``.
        """
        while True:
            if thread.done:
                self._exit_thread(thread)
                return "exited"
            phase = thread.current_phase
            assert phase is not None
            if phase.kind is PhaseKind.BARRIER:
                if thread.process.barrier_arrive(thread):
                    self._release_barrier(thread.process, thread.phase_idx)
                    thread.advance_phase()
                    continue
                queue = self._barriers.setdefault(
                    (thread.process.pid, thread.phase_idx),
                    WaitQueue(f"barrier:{thread.process.pid}:{thread.phase_idx}"),
                )
                self._emit(TraceKind.BARRIER_WAIT, thread, detail=phase.name)
                queue.park(thread)
                thread.set_state(ThreadState.BLOCKED, self.engine.now)
                return "parked"
            # compute phase
            if phase.pp is not None and self.extension is not None:
                request = phase.period_request(thread.process.pid)
                pp_id, decision = self.extension.on_pp_begin(thread, request)
                thread.active_pp = pp_id
                self.machine.counters.add(HwCounter.PP_BEGIN_CALLS, 1)
                if decision is AdmissionDecision.WAIT:
                    self.machine.counters.add(HwCounter.PP_DENIALS, 1)
                    self._emit(TraceKind.PP_DENY, thread, detail=phase.name)
                    thread.set_state(ThreadState.PP_WAIT, self.engine.now)
                    return "parked"
                self._emit(TraceKind.PP_BEGIN, thread, detail=phase.name)
            return "run"

    def _release_barrier(self, process: Process, phase_idx: int) -> None:
        """Last arrival: wake all siblings parked at this barrier."""
        queue = self._barriers.pop((process.pid, phase_idx), None)
        if queue is None:
            return
        for sibling in queue.wake_all():
            self._emit(TraceKind.BARRIER_RELEASE, sibling)
            sibling.advance_phase()
            if self._enter_phases(sibling) == "run":
                sibling.set_state(ThreadState.READY, self.engine.now)
                self.cfs.enqueue(sibling, waking=True)

    def _wake_pp_owner(self, thread: Thread) -> None:
        """The RDA extension admitted a waiting period; resume its owner."""
        if thread.state is not ThreadState.PP_WAIT:
            raise SchedulerError(
                f"waking thread {thread.tid} not in PP_WAIT (is {thread.state})"
            )
        self._emit(TraceKind.PP_WAKE, thread)
        thread.set_state(ThreadState.READY, self.engine.now)
        self.cfs.enqueue(thread, waking=True)

    def _complete_phase(self, core: _CoreState) -> None:
        """The running thread finished its compute phase on this core."""
        thread = core.thread
        assert thread is not None
        phase = thread.current_phase
        assert phase is not None
        self._emit(TraceKind.PHASE_DONE, thread, detail=phase.name)
        if phase.pp is not None and self.extension is not None:
            self.machine.counters.add(HwCounter.PP_END_CALLS, 1)
            pp_id = thread.active_pp
            thread.active_pp = None
            if pp_id is not None:
                for woken in self.extension.on_pp_end(thread, pp_id):
                    self._wake_pp_owner(woken)
        thread.advance_phase()
        if self._enter_phases(thread) == "run":
            return  # stays on this core; _refresh recomputes rates
        core.thread = None
        thread.core = None

    # ==================================================================
    # accrual: fold elapsed time into counters and energy
    # ==================================================================
    def _accrue(self, now: float) -> None:
        dt = now - self._last_accrual
        if dt < -_EPS_TIME:
            raise SimulationError("accrual went backwards in time")
        total_dram = 0.0
        active = 0
        counters = self.machine.counters
        freq = self.config.cpu.frequency_hz
        if dt > 0:
            for core in self.cores:
                thread = core.thread
                if thread is None:
                    continue
                active += 1
                # continuous fair-share accounting, weighted by nice level
                thread.vruntime += dt * (1024.0 / thread.weight)
                remaining = dt
                if thread.stall_remaining_s > 0.0:
                    s = min(remaining, thread.stall_remaining_s)
                    frac = s / thread.stall_remaining_s
                    d = thread.stall_dram_total * frac
                    thread.stall_dram_total -= d
                    thread.stall_remaining_s -= s
                    if thread.stall_remaining_s < _EPS_TIME:
                        thread.stall_remaining_s = 0.0
                        d += thread.stall_dram_total
                        thread.stall_dram_total = 0.0
                    thread.stats.dram_accesses += d
                    thread.stats.reload_time_s += s
                    total_dram += d
                    remaining -= s
                self._busy_core_seconds += dt
                if remaining > 0.0 and thread.seconds_per_instr > 0.0:
                    n = remaining / thread.seconds_per_instr
                    n = min(n, thread.instr_remaining())
                    phase = thread.current_phase
                    assert phase is not None
                    thread.instr_done += n
                    flops = n * phase.flops_per_instr
                    llc = n * thread.llc_refs_per_instr
                    dram = n * thread.dram_per_instr
                    thread.stats.instructions += n
                    thread.stats.flops += flops
                    thread.stats.llc_refs += llc
                    thread.stats.dram_accesses += dram
                    total_dram += dram
                    counters.add(HwCounter.INSTRUCTIONS, n)
                    counters.add(HwCounter.FP_OPS, flops)
                    counters.add(HwCounter.LLC_REFERENCES, llc)
                counters.add(HwCounter.CYCLES, dt * freq * self.freq_scale)
        self.machine.accrue_interval(
            now,
            active,
            total_dram,
            self._pending_switches,
            freq_scale=self.freq_scale,
        )
        self._pending_switches = 0
        self._last_accrual = now

    # ==================================================================
    # dispatch, rate recomputation, event scheduling
    # ==================================================================
    def _refresh(self) -> None:
        placed = self._dispatch()
        self._recompute_rates(placed)
        self._reschedule_all()

    def _dispatch(self) -> list[tuple[_CoreState, Thread, bool]]:
        """Fill idle cores from the run queue.

        Returns (core, thread, switched) for each placement; ``switched``
        is True when the core last ran a *different* thread, in which case
        the incoming thread must re-warm its cache share.
        """
        placed: list[tuple[_CoreState, Thread, bool]] = []
        n_runnable = self.cfs.n_queued + sum(
            1 for c in self.cores if c.thread is not None
        )
        for core in self.cores:
            if core.thread is not None:
                continue
            thread = self.cfs.pick_next()
            if thread is None:
                break
            n_runnable_here = n_runnable  # count includes this thread already
            core.thread = thread
            thread.core = core.idx
            thread.set_state(ThreadState.RUNNING, self.engine.now)
            self._emit(TraceKind.DISPATCH, thread)
            switched = core.last_tid != thread.tid
            if switched and core.last_tid is not None:
                self._pending_switches += 1
                thread.stats.context_switches += 1
            if thread.last_core is not None and thread.last_core != core.idx:
                thread.stats.migrations += 1
                self.machine.counters.add(HwCounter.MIGRATIONS, 1)
            thread.last_core = core.idx
            core.last_tid = thread.tid
            core.quantum_end = self.engine.now + self.cfs.timeslice(n_runnable_here)
            placed.append((core, thread, switched))
        return placed

    def _running_threads(self) -> list[Thread]:
        return [c.thread for c in self.cores if c.thread is not None]

    def _recompute_rates(
        self, placed: Sequence[tuple[_CoreState, Thread, bool]] = ()
    ) -> None:
        """Re-derive every running thread's rate from the co-running set."""
        running = self._running_threads()
        if not running:
            return
        key = (
            self.freq_scale,
            tuple((id(t.current_phase), t.process.pid) for t in running),
        )
        cached = self._rate_cache.get(key)
        if cached is None:
            cached = self._rates_for(running)
            if len(self._rate_cache) >= self._RATE_CACHE_MAX:
                self._rate_cache.clear()
            self._rate_cache[key] = cached
        rate_triples, points = cached
        for t, (spi, dpi, lpi) in zip(running, rate_triples):
            t.seconds_per_instr = spi
            t.dram_per_instr = dpi
            t.llc_refs_per_instr = lpi
        if not placed:
            return
        # Charge switch + cold-reload cost to threads that just landed on a
        # core previously running someone else (figure 1's reload effect).
        exec_model = self.machine.exec_model
        point_of = {t.tid: p for t, p in zip(running, points)}
        for core, thread, switched in placed:
            if not switched:
                continue
            thread.stall_remaining_s += self.config.scheduler.context_switch_s
            if self.config.scheduler.model_cache_reload:
                phase = thread.current_phase
                assert phase is not None
                reload = exec_model.reload_cost(phase, point_of[thread.tid])
                thread.stall_remaining_s += reload.seconds
                thread.stall_dram_total += reload.dram_accesses

    def _rates_for(self, running: Sequence[Thread]) -> tuple:
        """Slow path: derive (rate triples, cache points) for a co-running set."""
        demands = []
        phases: list[Phase] = []
        for t in running:
            phase = t.current_phase
            assert phase is not None and phase.kind is PhaseKind.COMPUTE
            phases.append(phase)
            demands.append(
                LlcDemand(
                    wss_bytes=phase.wss_bytes,
                    reuse=phase.reuse,
                    sharing_key=phase.sharing_scope(t.process.pid),
                )
            )
        points = self.machine.llc_model.resolve(demands)
        exec_model = self.machine.exec_model
        rates = []
        for phase, point in zip(phases, points):
            base = exec_model.rate(phase, point, freq_scale=self.freq_scale)
            overhead = 0.0
            if self.extension is not None and phase.pp is not None:
                overhead = exec_model.pp_overhead_fraction(
                    phase, base.seconds_per_instr
                )
            rates.append(
                exec_model.rate(phase, point, overhead, freq_scale=self.freq_scale)
            )
        rates = exec_model.apply_bandwidth_cap(rates)
        return (
            tuple(
                (r.seconds_per_instr, r.dram_per_instr, r.llc_refs_per_instr)
                for r in rates
            ),
            tuple(points),
        )

    def _reschedule_all(self) -> None:
        engine = self.engine
        now = engine.now
        schedule_at = engine.schedule_at
        core_event = self._core_event
        for core in self.cores:
            if core.event is not None:
                core.event.cancel()
                core.event = None
            thread = core.thread
            if thread is None:
                continue
            if thread.seconds_per_instr <= 0.0:
                raise SimulationError(
                    f"thread {thread.tid} has no execution rate"
                )
            t_done = (
                now
                + thread.stall_remaining_s
                + thread.instr_remaining() * thread.seconds_per_instr
            )
            t_event = min(t_done, max(core.quantum_end, now))
            core.event = schedule_at(max(t_event, now), core_event, core)

    # ==================================================================
    # event handler
    # ==================================================================
    def _core_event(self, core: _CoreState) -> None:
        now = self.engine.now
        self._accrue(now)
        thread = core.thread
        if thread is None:  # pragma: no cover - cancelled races
            self._refresh()
            return
        phase_done = (
            thread.stall_remaining_s <= _EPS_TIME
            and thread.instr_remaining() <= _EPS_INSTR
        )
        if phase_done:
            self._complete_phase(core)
        elif now + _EPS_TIME >= core.quantum_end:
            if self.cfs.n_queued > 0:
                # Preempt: back of the fairness queue, core picks next.
                self._emit(TraceKind.PREEMPT, thread)
                thread.set_state(ThreadState.READY, now)
                thread.core = None
                core.thread = None
                self.cfs.enqueue(thread)
            else:
                # Nothing else to run; extend the quantum.
                core.quantum_end = now + self.cfs.timeslice(1)
        self._refresh()
