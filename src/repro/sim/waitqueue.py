"""Kernel wait queues with wake events.

"To pause and resume threads, our scheduling extension utilizes a wait queue
with wake events inside the Linux kernel" (§3).  This module provides that
mechanism for the simulated kernel: threads are parked on a queue and later
woken individually or en masse.  The queue does not change thread states
itself — the kernel does — so it can back both the RDA resource waitlist and
ordinary blocking primitives (barriers).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

from ..errors import SchedulerError
from .process import Thread

__all__ = ["WaitQueue"]


class WaitQueue:
    """FIFO queue of parked threads (insertion-ordered, O(1) removal)."""

    def __init__(self, name: str = "waitqueue") -> None:
        self.name = name
        self._waiters: "OrderedDict[int, Thread]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._waiters)

    def __contains__(self, thread: Thread) -> bool:
        return thread.tid in self._waiters

    def park(self, thread: Thread) -> None:
        if thread.tid in self._waiters:
            raise SchedulerError(
                f"{self.name}: thread {thread.tid} is already parked"
            )
        self._waiters[thread.tid] = thread

    def wake_one(self) -> Optional[Thread]:
        """Remove and return the oldest waiter, or None when empty."""
        if not self._waiters:
            return None
        _, thread = self._waiters.popitem(last=False)
        return thread

    def wake(self, thread: Thread) -> bool:
        """Remove a specific thread.  True when it was parked here."""
        return self._waiters.pop(thread.tid, None) is not None

    def wake_all(self) -> list[Thread]:
        """Remove and return every waiter in FIFO order."""
        woken = list(self._waiters.values())
        self._waiters.clear()
        return woken

    def waiters(self) -> Iterable[Thread]:
        return iter(self._waiters.values())
