"""Processes and threads with Linux-like lifecycle states.

A :class:`Thread` walks a *program* (sequence of phases).  The kernel moves
threads between states; this module only holds data and bookkeeping — all
policy lives in :mod:`repro.sim.kernel` and :mod:`repro.sim.cfs`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import SchedulerError
from ..workloads.base import Phase, PhaseKind, ProcessSpec

__all__ = ["ThreadState", "ThreadStats", "Thread", "Process"]


#: CFS weight of nice 0; each nice step scales the weight by ~1.25
NICE_0_WEIGHT = 1024


def nice_to_weight(nice: int) -> float:
    """Unix niceness to a CFS-style load weight (1.25x per step)."""
    if not -20 <= nice <= 19:
        raise SchedulerError(f"nice value {nice} out of range [-20, 19]")
    return NICE_0_WEIGHT / (1.25**nice)


class ThreadState(enum.Enum):
    NEW = "new"
    READY = "ready"  # runnable, on a run queue
    RUNNING = "running"  # on a core
    BLOCKED = "blocked"  # waiting on a kernel wait queue (barrier etc.)
    PP_WAIT = "pp_wait"  # paused by the RDA extension (resource waitlist)
    EXITED = "exited"


@dataclass
class ThreadStats:
    """Per-thread accounting, accrued by the execution model."""

    instructions: float = 0.0
    flops: float = 0.0
    llc_refs: float = 0.0
    dram_accesses: float = 0.0
    run_time_s: float = 0.0
    ready_time_s: float = 0.0
    pp_wait_time_s: float = 0.0
    blocked_time_s: float = 0.0
    reload_time_s: float = 0.0
    context_switches: int = 0
    migrations: int = 0  # dispatches onto a different core than last time
    spawn_time_s: float = 0.0
    exit_time_s: Optional[float] = None

    @property
    def turnaround_s(self) -> Optional[float]:
        if self.exit_time_s is None:
            return None
        return self.exit_time_s - self.spawn_time_s


_tids = itertools.count(1)


class Thread:
    """One simulated kernel thread executing a phase program."""

    def __init__(self, process: "Process", program: Sequence[Phase]) -> None:
        self.tid = next(_tids)
        self.process = process
        self.program = list(program)
        self.phase_idx = 0
        #: instructions already retired within the current phase
        self.instr_done = 0.0
        self.state = ThreadState.NEW
        self.core: Optional[int] = None
        self.last_core: Optional[int] = None
        self.vruntime = 0.0
        #: CFS load weight derived from the process nice value; vruntime
        #: advances as wall-runtime / (weight / NICE_0_WEIGHT)
        self.weight = nice_to_weight(process.spec.nice)
        #: kernel-local launch sequence number; run-queue tie-breaks hash
        #: this (not the global tid) so results do not depend on how many
        #: simulations ran earlier in the process
        self.queue_seq = self.tid
        #: pp_id of the progress period opened for the current phase
        self.active_pp: Optional[int] = None
        #: wall-seconds of stall to consume before instructions progress
        #: (cold-cache reload after a context switch + API call overhead)
        self.stall_remaining_s = 0.0
        #: DRAM accesses the pending stall represents (accrued pro rata)
        self.stall_dram_total = 0.0
        #: cached execution rate for the current contention state
        self.seconds_per_instr = 0.0
        self.dram_per_instr = 0.0
        self.llc_refs_per_instr = 0.0
        #: timestamp of the last thread-state change (for time accounting)
        self.state_since = 0.0
        self.stats = ThreadStats()

    # ------------------------------------------------------------------
    @property
    def current_phase(self) -> Optional[Phase]:
        if self.phase_idx < len(self.program):
            return self.program[self.phase_idx]
        return None

    @property
    def done(self) -> bool:
        return self.phase_idx >= len(self.program)

    @property
    def runnable(self) -> bool:
        return self.state in (ThreadState.READY, ThreadState.RUNNING)

    def instr_remaining(self) -> float:
        phase = self.current_phase
        if phase is None or phase.kind is not PhaseKind.COMPUTE:
            return 0.0
        return max(0.0, phase.instructions - self.instr_done)

    def advance_phase(self) -> None:
        """Move to the next phase of the program."""
        if self.done:
            raise SchedulerError(f"thread {self.tid}: advance past end of program")
        self.phase_idx += 1
        self.instr_done = 0.0

    def set_state(self, state: ThreadState, now: float) -> None:
        """Transition states, folding elapsed time into the right counter."""
        elapsed = now - self.state_since
        if elapsed < 0:  # pragma: no cover - defensive
            raise SchedulerError("thread state change went backwards in time")
        bucket = {
            ThreadState.RUNNING: "run_time_s",
            ThreadState.READY: "ready_time_s",
            ThreadState.PP_WAIT: "pp_wait_time_s",
            ThreadState.BLOCKED: "blocked_time_s",
        }.get(self.state)
        if bucket is not None:
            setattr(self.stats, bucket, getattr(self.stats, bucket) + elapsed)
        self.state = state
        self.state_since = now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        phase = self.current_phase
        where = phase.name if phase else "<done>"
        return (
            f"<Thread {self.tid} ({self.process.name}) {self.state.value} "
            f"phase={where}>"
        )


_pids = itertools.count(1)


class Process:
    """A simulated process: an address space plus one or more threads."""

    def __init__(self, spec: ProcessSpec) -> None:
        self.pid = next(_pids)
        self.spec = spec
        self.threads = [
            Thread(self, spec.program_for(i)) for i in range(spec.n_threads)
        ]
        #: threads currently parked at a barrier, per barrier phase index
        self._barrier_arrivals: dict[int, set[int]] = {}

    @property
    def name(self) -> str:
        return f"{self.spec.name}#{self.pid}"

    @property
    def done(self) -> bool:
        return all(t.state is ThreadState.EXITED for t in self.threads)

    @property
    def live_threads(self) -> list[Thread]:
        return [t for t in self.threads if t.state is not ThreadState.EXITED]

    # ------------------------------------------------------------------
    def barrier_arrive(self, thread: Thread) -> bool:
        """Record arrival at the thread's current barrier phase.

        Returns True when this arrival completes the barrier (all live
        sibling threads whose program contains this barrier have arrived).
        """
        idx = thread.phase_idx
        self._barrier_arrivals.setdefault(idx, set()).add(thread.tid)
        if self.barrier_ready(idx):
            del self._barrier_arrivals[idx]
            return True
        return False

    def barrier_ready(self, idx: int) -> bool:
        """True when every live thread expected at barrier ``idx`` arrived.

        Re-checked when a sibling exits, so a shrinking thread group cannot
        strand waiters.
        """
        arrivals = self._barrier_arrivals.get(idx, set())
        expected = {
            t.tid
            for t in self.live_threads
            if idx < len(t.program) and t.program[idx].kind is PhaseKind.BARRIER
        }
        return bool(expected) and arrivals >= expected

    def barrier_clear(self, idx: int) -> None:
        self._barrier_arrivals.pop(idx, None)

    def pending_barriers(self) -> list[int]:
        return list(self._barrier_arrivals.keys())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name} threads={len(self.threads)}>"
