"""The simulated machine: cores, shared LLC model, energy meter, counters.

One :class:`Machine` bundles everything hardware-side that the kernel
drives: the contention model resolving co-running demands, the execution
model turning demands into rates, the RAPL meter and the PMU counter bank.
"""

from __future__ import annotations

from typing import Optional

from ..config import MachineConfig, default_machine_config
from ..energy.rapl import RaplMeter, RaplSample
from ..mem.contention import SharedLlcModel
from ..perf.counters import CounterSet, HwCounter
from .cpu import ExecutionModel

__all__ = ["Machine"]


class Machine:
    """Hardware-side state of the simulation.

    Args:
        llc_model: contention model for the shared LLC; defaults to the
            demand-proportional :class:`SharedLlcModel`.  Pass a
            :class:`repro.mem.partition.PartitionedLlcModel` to simulate
            way-partitioned hardware (the paper's §6 extension).
    """

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        llc_model: Optional[SharedLlcModel] = None,
    ) -> None:
        self.config = config or default_machine_config()
        self.llc_model = llc_model or SharedLlcModel(self.config.llc_capacity)
        self.exec_model = ExecutionModel(self.config)
        self.rapl = RaplMeter(self.config.power, self.config.cpu.n_cores)
        self.counters = CounterSet()

    @property
    def n_cores(self) -> int:
        return self.config.cpu.n_cores

    # ------------------------------------------------------------------
    def accrue_interval(
        self,
        now_s: float,
        n_active_cores: int,
        dram_accesses: float,
        context_switches: int = 0,
        freq_scale: float = 1.0,
    ) -> None:
        """Integrate energy and machine-wide counters over an interval."""
        self.rapl.accrue(
            now_s,
            n_active_cores,
            dram_accesses=dram_accesses,
            context_switches=context_switches,
            freq_scale=freq_scale,
        )
        if dram_accesses:
            self.counters.add(HwCounter.LLC_MISSES, dram_accesses)
        if context_switches:
            self.counters.add(HwCounter.CONTEXT_SWITCHES, context_switches)

    def rapl_sample(self, now_s: float, n_active_cores: int) -> RaplSample:
        """Bring the meter up to ``now`` and return a snapshot."""
        self.rapl.accrue(now_s, n_active_cores)
        return self.rapl.sample()
