"""Operating-system and machine substrate (discrete-event simulation).

This subpackage replaces the paper's Linux 4.6.0 testbed.  It provides:

* :mod:`repro.sim.engine` — the event loop and simulated clock,
* :mod:`repro.sim.process` — processes and threads with Linux-like states,
* :mod:`repro.sim.runqueue` / :mod:`repro.sim.cfs` — a CFS-like fair
  scheduler (the "default" policy the paper compares against),
* :mod:`repro.sim.waitqueue` — kernel wait queues with wake events (the
  mechanism the paper's extension uses to pause/resume threads),
* :mod:`repro.sim.cpu` / :mod:`repro.sim.machine` — the execution and
  energy model of the simulated Xeon E5-2420,
* :mod:`repro.sim.kernel` — the syscall surface and the extension hook the
  demand-aware scheduler plugs into.
"""

from .engine import Engine, EventHandle
from .process import Process, Thread, ThreadState
from .kernel import Kernel, SchedulingExtension, AdmissionDecision
from .machine import Machine
from .tracing import KernelTracer, TraceKind, render_timeline

__all__ = [
    "Engine",
    "EventHandle",
    "Process",
    "Thread",
    "ThreadState",
    "Kernel",
    "SchedulingExtension",
    "AdmissionDecision",
    "Machine",
    "KernelTracer",
    "TraceKind",
    "render_timeline",
]
