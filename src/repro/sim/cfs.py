"""CFS-like fair scheduler — the "default OS scheduling policy".

Captures the properties of Linux's Completely Fair Scheduler that matter to
the paper's evaluation:

* runnable threads are picked by minimum virtual runtime (fairness),
* all cores are kept busy whenever threads are runnable (max utilization),
* the timeslice shrinks as the number of runnable threads grows
  (``slice = max(sched_latency / threads_per_core, min_granularity)``),
  which is what makes heavily oversubscribed workloads context-switch — and
  reload their caches — frequently (figure 1's round-robin behaviour),
* a thread waking up is placed with vruntime no lower than the current
  minimum, so sleepers get a modest boost but cannot monopolize a core.

Deliberate simplifications (documented in DESIGN.md): a single global run
queue instead of per-CPU queues with load balancing, uniform nice values,
and no wakeup preemption — a woken thread waits for a core to become free
or for a quantum to end.
"""

from __future__ import annotations

from typing import Optional

from ..config import SchedulerConfig
from .process import Thread
from .runqueue import RunQueue

__all__ = ["CfsScheduler"]

#: CFS targeted scheduling latency (one full rotation of the run queue).
SCHED_LATENCY_S = 0.006


class CfsScheduler:
    """Fair pick-next policy plus timeslice computation."""

    def __init__(self, config: SchedulerConfig, n_cores: int) -> None:
        self.config = config
        self.n_cores = n_cores
        self.queue = RunQueue()
        self._min_vruntime = 0.0

    # ------------------------------------------------------------------
    @property
    def n_queued(self) -> int:
        return len(self.queue)

    def enqueue(self, thread: Thread, *, waking: bool = False) -> None:
        """Make a thread runnable.

        A waking thread's vruntime is floored to the queue's minimum so it
        neither starves the queue (vruntime too low after a long sleep) nor
        gets penalized for sleeping.
        """
        if waking:
            floor = self._current_min()
            if thread.vruntime < floor:
                thread.vruntime = floor
        self.queue.push(thread)

    def dequeue(self, thread: Thread) -> bool:
        return self.queue.remove(thread)

    def pick_next(self) -> Optional[Thread]:
        """Pop the runnable thread with minimum vruntime."""
        thread = self.queue.pop()
        if thread is not None:
            self._min_vruntime = max(self._min_vruntime, thread.vruntime)
        return thread

    def _current_min(self) -> float:
        queued = self.queue.min_vruntime()
        if queued is None:
            return self._min_vruntime
        return max(self._min_vruntime, min(self._min_vruntime, queued))

    # ------------------------------------------------------------------
    def charge(self, thread: Thread, runtime_s: float) -> None:
        """Account actual runtime into the thread's virtual runtime."""
        thread.vruntime += runtime_s

    def timeslice(self, n_running: int) -> float:
        """Quantum length given the number of runnable+running threads.

        Mirrors CFS: each thread gets an equal share of the scheduling
        latency per core, floored at the minimum granularity.
        """
        per_core = max(1.0, n_running / self.n_cores)
        quantum = SCHED_LATENCY_S / per_core
        return max(self.config.min_granularity_s, min(self.config.timeslice_s, quantum))
