"""Discrete-event simulation core: a priority queue of timestamped callbacks.

The engine is deliberately minimal — the OS model in :mod:`repro.sim.kernel`
builds everything else on top of :meth:`Engine.schedule` and
:meth:`Engine.cancel`.  Events at equal timestamps fire in scheduling order
(FIFO), which makes simulations fully deterministic.

Performance notes: heap entries are ``(time, seq, handle)`` tuples so the
heap orders them with C-level tuple comparisons (``seq`` is unique, so the
handle itself is never compared), and :meth:`Engine.run` is a flattened
dispatch loop with the queue, ``heappop`` and hook list hoisted into locals.
Compaction rewrites the queue *in place* (slice assignment) so the run
loop's local alias stays valid across a compaction triggered mid-callback.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from ..errors import SimulationError

__all__ = ["Engine", "EventHandle"]


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[..., Any]] = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True
        self.callback = None
        self.args = ()

    @property
    def pending(self) -> bool:
        return not self.cancelled and self.callback is not None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.9f} seq={self.seq} {state}>"


class Engine:
    """Simulated clock plus an event queue.

    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(1.5, fired.append, "a")
    >>> _ = eng.schedule(0.5, fired.append, "b")
    >>> eng.run()
    >>> fired
    ['b', 'a']
    """

    #: cancelled-entry floor below which :meth:`cancel` never compacts
    #: (rebuilding a tiny heap costs more than carrying the garbage)
    COMPACT_MIN_CANCELLED = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        # heap of (time, seq, EventHandle); seq breaks ties FIFO and keeps
        # tuple comparison from ever reaching the handle
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._running = False
        self._cancelled_in_queue = 0
        self.events_processed = 0
        #: callbacks invoked as ``hook(now)`` after every event callback
        #: returns — the state between events is quiescent, which is where
        #: observers (e.g. the kernel sanitizer) can check global invariants
        self.post_event_hooks: list[Callable[[float], Any]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        handle = EventHandle(time, next(self._seq), callback, args)
        heapq.heappush(self._queue, (time, handle.seq, handle))
        return handle

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        handle = EventHandle(time, next(self._seq), callback, args)
        heapq.heappush(self._queue, (time, handle.seq, handle))
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event (idempotent).

        Cancelled entries stay in the heap until popped; to keep a long run
        with many cancelled timers (e.g. rescinded preemptions) from growing
        the heap unboundedly, the queue is compacted in place whenever
        cancelled entries outnumber live ones.
        """
        if handle.pending:
            handle.cancel()
            self._cancelled_in_queue += 1
            self._maybe_compact()

    def _maybe_compact(self) -> None:
        if (
            self._cancelled_in_queue >= self.COMPACT_MIN_CANCELLED
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            # slice-assign: the run loop holds a local alias to this list
            self._queue[:] = [e for e in self._queue if not e[2].cancelled]
            heapq.heapify(self._queue)
            self._cancelled_in_queue = 0

    def _note_popped_cancelled(self) -> None:
        if self._cancelled_in_queue:
            self._cancelled_in_queue -= 1

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if queue is empty."""
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
            self._note_popped_cancelled()
        return queue[0][0] if queue else None

    def step(self) -> bool:
        """Run the single next event.  Returns False when the queue is empty."""
        queue = self._queue
        while queue:
            time, _seq, handle = heapq.heappop(queue)
            if handle.cancelled or handle.callback is None:
                self._note_popped_cancelled()
                continue
            if time < self._now:
                raise SimulationError("event queue went backwards in time")
            self._now = time
            callback, args = handle.callback, handle.args
            handle.cancel()  # consumed
            self.events_processed += 1
            callback(*args)
            for hook in self.post_event_hooks:
                hook(self._now)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Args:
            until: stop (leaving later events queued) once the next event lies
                strictly beyond this simulated time; the clock is advanced to
                ``until``.
            max_events: safety valve against runaway simulations.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        processed = 0
        queue = self._queue
        heappop = heapq.heappop
        hooks = self.post_event_hooks
        try:
            while True:
                # drop cancelled leaders so queue[0] is the next live event
                while queue and queue[0][2].cancelled:
                    heappop(queue)
                    if self._cancelled_in_queue:
                        self._cancelled_in_queue -= 1
                if not queue:
                    # The clock must land on `until` even when no event lies
                    # before it (including an entirely empty queue) — but it
                    # never moves backwards.
                    if until is not None and until > self._now:
                        self._now = until
                    break
                time = queue[0][0]
                if until is not None and time > until:
                    if until > self._now:
                        self._now = until
                    break
                handle = heappop(queue)[2]
                if time < self._now:
                    raise SimulationError("event queue went backwards in time")
                self._now = time
                callback, args = handle.callback, handle.args
                handle.cancel()  # consumed
                self.events_processed += 1
                callback(*args)
                if hooks:
                    now = self._now
                    for hook in hooks:
                        hook(now)
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
        finally:
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine now={self._now:.9f} pending={len(self._queue)}>"
