"""Discrete-event simulation core: a priority queue of timestamped callbacks.

The engine is deliberately minimal — the OS model in :mod:`repro.sim.kernel`
builds everything else on top of :meth:`Engine.schedule` and
:meth:`Engine.cancel`.  Events at equal timestamps fire in scheduling order
(FIFO), which makes simulations fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from ..errors import SimulationError

__all__ = ["Engine", "EventHandle"]


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[..., Any]] = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True
        self.callback = None
        self.args = ()

    @property
    def pending(self) -> bool:
        return not self.cancelled and self.callback is not None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.9f} seq={self.seq} {state}>"


class Engine:
    """Simulated clock plus an event queue.

    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(1.5, fired.append, "a")
    >>> _ = eng.schedule(0.5, fired.append, "b")
    >>> eng.run()
    >>> fired
    ['b', 'a']
    """

    #: cancelled-entry floor below which :meth:`cancel` never compacts
    #: (rebuilding a tiny heap costs more than carrying the garbage)
    COMPACT_MIN_CANCELLED = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        self._cancelled_in_queue = 0
        self.events_processed = 0
        #: callbacks invoked as ``hook(now)`` after every event callback
        #: returns — the state between events is quiescent, which is where
        #: observers (e.g. the kernel sanitizer) can check global invariants
        self.post_event_hooks: list[Callable[[float], Any]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        handle = EventHandle(time, next(self._seq), callback, args)
        heapq.heappush(self._queue, handle)
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event (idempotent).

        Cancelled entries stay in the heap until popped; to keep a long run
        with many cancelled timers (e.g. rescinded preemptions) from growing
        the heap unboundedly, the queue is compacted in place whenever
        cancelled entries outnumber live ones.
        """
        if handle.pending:
            handle.cancel()
            self._cancelled_in_queue += 1
            self._maybe_compact()

    def _maybe_compact(self) -> None:
        if (
            self._cancelled_in_queue >= self.COMPACT_MIN_CANCELLED
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self._queue = [h for h in self._queue if not h.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_in_queue = 0

    def _note_popped_cancelled(self) -> None:
        if self._cancelled_in_queue:
            self._cancelled_in_queue -= 1

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._note_popped_cancelled()
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the single next event.  Returns False when the queue is empty."""
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled or handle.callback is None:
                self._note_popped_cancelled()
                continue
            if handle.time < self._now:
                raise SimulationError("event queue went backwards in time")
            self._now = handle.time
            callback, args = handle.callback, handle.args
            handle.cancel()  # consumed
            self.events_processed += 1
            callback(*args)
            for hook in self.post_event_hooks:
                hook(self._now)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Args:
            until: stop (leaving later events queued) once the next event lies
                strictly beyond this simulated time; the clock is advanced to
                ``until``.
            max_events: safety valve against runaway simulations.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        processed = 0
        try:
            while True:
                next_time = self.peek_time()
                if until is not None and (next_time is None or next_time > until):
                    # The clock must land on `until` even when no event lies
                    # before it (including an entirely empty queue) — but it
                    # never moves backwards.
                    if until > self._now:
                        self._now = until
                    break
                if next_time is None:
                    break
                if not self.step():
                    break
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
        finally:
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine now={self._now:.9f} pending={len(self._queue)}>"
