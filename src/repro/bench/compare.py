"""Regression gate: compare current BENCH records against a baseline.

The comparator is unit-driven — a record's ``unit`` tells it which
direction is a regression (see :mod:`repro.bench.schema`):

* ``*/s``   — throughput; current < baseline × (1 - tolerance) fails.
* ``s``     — latency; current > baseline × (1 + tolerance) fails.
* anything else — informational count; reported, never gated.

A ``config_digest`` mismatch is always a hard failure: it means the
measured configuration changed, so the numbers are not comparable and the
committed baselines must be re-blessed (``repro bench`` writes fresh ones).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .schema import BenchRecord

__all__ = ["compare_records", "format_problems"]


def _index(records: Sequence[BenchRecord]) -> Dict[Tuple[str, str], BenchRecord]:
    return {(r.area, r.metric): r for r in records}


def compare_records(
    baseline: Sequence[BenchRecord],
    current: Sequence[BenchRecord],
    tolerance: float = 0.30,
) -> List[str]:
    """Return a list of human-readable problems (empty = gate passes)."""
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    problems: List[str] = []
    base_by_key = _index(baseline)
    cur_by_key = _index(current)

    for key, base in sorted(base_by_key.items()):
        name = f"{key[0]}/{key[1]}"
        cur = cur_by_key.get(key)
        if cur is None:
            problems.append(f"{name}: metric missing from current run")
            continue
        if cur.config_digest != base.config_digest:
            problems.append(
                f"{name}: config digest changed "
                f"({base.config_digest} -> {cur.config_digest}); the "
                "benchmark configuration is different — re-bless the "
                "baselines with `python -m repro bench`"
            )
            continue
        if not base.gated:
            continue
        if base.value == 0:
            continue  # nothing meaningful to compare against
        if base.higher_is_better and cur.value < base.value * (1.0 - tolerance):
            problems.append(
                f"{name}: {cur.value:g} {cur.unit} is "
                f"{(1.0 - cur.value / base.value):.0%} below baseline "
                f"{base.value:g} (tolerance {tolerance:.0%})"
            )
        elif base.lower_is_better and cur.value > base.value * (1.0 + tolerance):
            problems.append(
                f"{name}: {cur.value:g} {cur.unit} is "
                f"{(cur.value / base.value - 1.0):.0%} above baseline "
                f"{base.value:g} (tolerance {tolerance:.0%})"
            )
    return problems


def format_problems(problems: Sequence[str]) -> str:
    if not problems:
        return "bench: no regressions beyond tolerance"
    lines = [f"bench: {len(problems)} regression problem(s):"]
    lines += [f"  - {p}" for p in problems]
    return "\n".join(lines)
