"""Orchestrate one ``repro bench`` pass: run areas, write files, compare.

One benchmark pass produces three files (one per area) in the output
directory::

    BENCH_sim.json            kernel + engine events/sec
    BENCH_serve.json          admissions/sec and admission latency percentiles
    BENCH_cluster.json        admissions/sec through the sharded placer front-end
    BENCH_fleet.json          sims/sec through run_grid and its result cache
    BENCH_serve_overload.json shed throughput and bounded sojourn under storm
    BENCH_serve_predict.json  admission throughput with demand prediction on

``--quick`` times each workload once (the sub-second serve and cluster
areas keep min-of-3 even in quick mode — their latency tails need it);
the full mode times the identical workload three times and keeps the best
rep, so both modes share config digests and stay mutually comparable.  When a baseline directory is given,
the comparison loads it *before* any output is written — comparing against
the committed baselines and then overwriting them in place (the CI flow)
is safe.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from . import areas
from .compare import compare_records, format_problems
from .schema import BenchError, BenchRecord, load_records, write_records

__all__ = ["AREA_NAMES", "BENCH_FILES", "BenchOptions", "run_bench"]

#: area name -> output file name (stable; documented in docs/BENCHMARKS.md)
BENCH_FILES: Dict[str, str] = {
    "sim": "BENCH_sim.json",
    "serve": "BENCH_serve.json",
    "cluster": "BENCH_cluster.json",
    "fleet": "BENCH_fleet.json",
    "serve_overload": "BENCH_serve_overload.json",
    "serve_predict": "BENCH_serve_predict.json",
}
AREA_NAMES = tuple(BENCH_FILES)

#: repetitions per timed workload (best-of-N); quick collapses to 1...
FULL_REPS = 3
#: ...except for the sub-second serve/cluster areas, whose latency tails
#: need min-of-N even in quick mode (three reps still finish in <1 s);
#: serve_overload and serve_predict run seconds-long reps, so quick keeps 2
QUICK_REPS = {"serve": 3, "cluster": 3, "serve_overload": 2,
              "serve_predict": 2}


@dataclass
class BenchOptions:
    """One ``repro bench`` invocation."""

    quick: bool = False
    seed: int = 1234
    out_dir: str = "."
    areas: Sequence[str] = field(default_factory=lambda: list(AREA_NAMES))
    cache_dir: Optional[str] = None
    jobs: Optional[int] = None
    compare_to: Optional[str] = None
    tolerance: float = 0.30


def _run_area(name: str, opts: BenchOptions) -> List[BenchRecord]:
    reps = QUICK_REPS.get(name, 1) if opts.quick else FULL_REPS
    if name == "sim":
        return areas.bench_sim(opts.seed, reps)
    if name == "serve":
        return areas.bench_serve(opts.seed, reps)
    if name == "cluster":
        return areas.bench_cluster(opts.seed, reps)
    if name == "fleet":
        return areas.bench_fleet(
            opts.seed, cache_dir=opts.cache_dir, jobs=opts.jobs
        )
    if name == "serve_overload":
        return areas.bench_serve_overload(opts.seed, reps)
    if name == "serve_predict":
        return areas.bench_serve_predict(opts.seed, reps)
    raise BenchError(f"unknown bench area {name!r}; choose from {AREA_NAMES}")


def run_bench(
    opts: BenchOptions, echo: Callable[[str], None] = print
) -> int:
    """Run the selected areas; returns a process exit code (0 = pass)."""
    selected = [a for a in AREA_NAMES if a in set(opts.areas)]
    unknown = set(opts.areas) - set(AREA_NAMES)
    if unknown:
        raise BenchError(
            f"unknown bench area(s) {sorted(unknown)}; choose from {AREA_NAMES}"
        )

    # load baselines first: the out dir may BE the baseline dir (CI)
    baseline: List[BenchRecord] = []
    if opts.compare_to is not None:
        for area in selected:
            path = os.path.join(opts.compare_to, BENCH_FILES[area])
            if not os.path.exists(path):
                raise BenchError(f"baseline {path} does not exist")
            baseline.extend(load_records(path))

    os.makedirs(opts.out_dir, exist_ok=True)
    current: List[BenchRecord] = []
    for area in selected:
        echo(f"bench: running area {area!r} "
             f"({'quick' if opts.quick else f'best of {FULL_REPS}'}, "
             f"seed {opts.seed})...")
        records = _run_area(area, opts)
        out_path = os.path.join(opts.out_dir, BENCH_FILES[area])
        write_records(out_path, records)
        current.extend(records)
        for r in records:
            echo(f"  {r.area}/{r.metric}: {r.value:g} {r.unit} "
                 f"(wall {r.wall_s:.3f}s, digest {r.config_digest})")
        echo(f"  -> {out_path}")

    if opts.compare_to is not None:
        problems = compare_records(baseline, current, opts.tolerance)
        echo(format_problems(problems))
        if problems:
            return 1
    return 0
