"""Benchmark record schema: one flat, stable shape for every area.

Every benchmark — the simulator kernel, the admission service, the
experiment fleet — reduces to a list of records with exactly these keys:

``{area, metric, value, unit, seed, config_digest, wall_s}``

* ``area`` — which subsystem produced the number (``sim``/``serve``/``fleet``).
* ``metric`` — what was measured (``events_per_s``, ``admission_latency_p99_s``…).
* ``value`` — the measurement.
* ``unit`` — carries the comparison direction: units ending in ``/s`` are
  higher-is-better throughputs, a bare ``s`` is a lower-is-better latency,
  anything else is an informational count the regression gate ignores.
* ``seed`` — the RNG seed the workload was pinned to.
* ``config_digest`` — hash of everything that defines the measured
  configuration (workload shape, machine, policy, seed) but *not* how many
  repetitions were timed, so ``--quick`` and full runs stay comparable.
* ``wall_s`` — wall time of the rep the value was taken from.

The digest is the guard rail: comparing records whose digests differ is
comparing different experiments, and the comparator refuses to do it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List

from ..errors import ReproError

__all__ = [
    "RECORD_FIELDS",
    "BenchError",
    "BenchRecord",
    "config_digest",
    "load_records",
    "write_records",
]

#: the one and only record shape — tests pin this
RECORD_FIELDS = (
    "area", "metric", "value", "unit", "seed", "config_digest", "wall_s",
)


class BenchError(ReproError):
    """A benchmark harness failure (bad record file, digest mismatch…)."""


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark measurement."""

    area: str
    metric: str
    value: float
    unit: str
    seed: int
    config_digest: str
    wall_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in RECORD_FIELDS}

    @property
    def higher_is_better(self) -> bool:
        return self.unit.endswith("/s")

    @property
    def lower_is_better(self) -> bool:
        return self.unit == "s"

    @property
    def gated(self) -> bool:
        """Whether the regression comparator gates on this record."""
        return self.higher_is_better or self.lower_is_better


def config_digest(spec: Any) -> str:
    """Stable hex digest of a JSON-canonicalizable benchmark spec.

    Callers must exclude repetition counts from ``spec`` so that quick and
    full runs of the same workload share a digest.
    """
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def write_records(path: str, records: Iterable[BenchRecord]) -> None:
    """Write records as a sorted, indented JSON array (diff-friendly)."""
    payload = [r.to_dict() for r in records]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_records(path: str) -> List[BenchRecord]:
    """Load and validate a BENCH_*.json file (exact schema enforced)."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, list):
        raise BenchError(f"{path}: expected a JSON array of records")
    records: List[BenchRecord] = []
    for i, item in enumerate(payload):
        if not isinstance(item, dict):
            raise BenchError(f"{path}[{i}]: expected an object")
        if set(item) != set(RECORD_FIELDS):
            raise BenchError(
                f"{path}[{i}]: keys {sorted(item)} != schema "
                f"{sorted(RECORD_FIELDS)}"
            )
        records.append(BenchRecord(**item))
    return records
