"""The benchmark areas: simulator kernel, admission service, cluster, fleet.

Each area runs a pinned, seeded workload and reduces it to a handful of
:class:`~repro.bench.schema.BenchRecord` rows.  Workloads are sized so a
``--quick`` pass finishes in a few seconds on a laptop while still hitting
the hot paths the records are meant to guard: the event-loop inner loop
and rate memoization (sim), frame codec + parking + the metrics registry
(serve), the placer front-end's redirect/forward paths (cluster), and the
content-addressed result cache (fleet).

Repetitions time the *same* deterministic workload several times and keep
the best result (classic min-of-N to shed scheduler noise) — best wall
clock for the single-payload areas, best value *per metric* for the serve
and cluster areas, whose latency percentiles spike independently of wall
time.  Rep counts are deliberately excluded from the config digest so
quick and full runs of one configuration remain comparable.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import replace
from typing import Callable, List, Optional, Tuple

from ..config import CacheConfig, CpuConfig, MachineConfig, default_machine_config
from ..core.policy import CompromisePolicy, StrictPolicy
from ..core.rda import RdaScheduler
# _canonical is the fleet's spec-canonicalizer; the bench digests reuse it
# so one hashing convention covers both subsystems.
from ..experiments.parallel import (
    ResultCache, RunRequest, RunSuccess, _canonical, run_grid, run_key,
)
from ..sim.engine import Engine
from ..sim.kernel import Kernel
from ..units import kib
from ..workloads.base import Phase, PpSpec, ProcessSpec, Workload
from ..workloads.suite import workload_by_name
from .schema import BenchRecord, config_digest

__all__ = [
    "bench_sim",
    "bench_serve",
    "bench_serve_overload",
    "bench_serve_predict",
    "bench_cluster",
    "bench_fleet",
]


def _best_of(reps: int, fn: Callable[[], Tuple[float, object]]) -> Tuple[float, object]:
    """Run ``fn`` ``reps`` times; return (best wall_s, that rep's payload)."""
    best_wall: Optional[float] = None
    best_payload: object = None
    for _ in range(max(1, reps)):
        wall, payload = fn()
        if best_wall is None or wall < best_wall:
            best_wall, best_payload = wall, payload
    return best_wall, best_payload


def _merge_best(rep_records: List[List[BenchRecord]]) -> List[BenchRecord]:
    """Element-wise best across repetitions of the same record list.

    Picking the whole record set from the min-*wall* rep does not shed
    latency noise: one 2 ms scheduler stall inflates a p99 forty-fold
    while moving a 100 ms wall by 2%.  Classic min-of-N must apply per
    metric — max for throughputs, min for latencies; informational counts
    are deterministic across reps, so the first rep's value stands.
    """
    merged = list(rep_records[0])
    for records in rep_records[1:]:
        for i, (best, cur) in enumerate(zip(merged, records)):
            take = (
                (cur.higher_is_better and cur.value > best.value)
                or (cur.lower_is_better and cur.value < best.value)
            )
            if take:
                merged[i] = cur
    return merged


# ----------------------------------------------------------------------
# sim: raw engine throughput + full kernel events/sec
# ----------------------------------------------------------------------
_ENGINE_EVENTS = 60_000


def _bench_phase(
    name: str, instructions: int, wss_mb: float, declare_pp: bool = True
) -> Phase:
    wss = int(wss_mb * 1_000_000)
    return Phase(
        name=name, instructions=instructions, flops_per_instr=1.0,
        mem_refs_per_instr=0.4, llc_refs_per_memref=0.1,
        wss_bytes=wss, reuse=0.9,
        pp=PpSpec(demand_bytes=wss) if declare_pp else None,
    )


def _sim_machine() -> MachineConfig:
    return MachineConfig(
        cpu=CpuConfig(n_cores=2),
        llc=CacheConfig("L3-Shared", kib(2048), associativity=16, shared=True),
    )


def _sim_workload() -> Workload:
    """Oversubscribed pp + background mix: 12 processes on 2 cores.

    The background (non-pp) processes deepen the run queue so CFS slice
    preemption fires constantly — that is what exercises the engine heap
    and the kernel's rate-recompute path rather than idling on I/O.
    """
    return Workload(
        name="bench-mix",
        processes=[
            ProcessSpec(
                name="pp",
                program=[
                    _bench_phase("a", 30_000_000, 0.9),
                    _bench_phase("b", 20_000_000, 0.5),
                    _bench_phase("c", 15_000_000, 1.2),
                ] * 4,
            )
        ] * 4
        + [
            ProcessSpec(
                name="bg",
                program=[
                    _bench_phase("x", 60_000_000, 0.3, declare_pp=False),
                    _bench_phase("y", 40_000_000, 0.2, declare_pp=False),
                ] * 4,
            )
        ] * 8,
    )


def bench_sim(seed: int, reps: int) -> List[BenchRecord]:
    machine = _sim_machine()
    workload = _sim_workload()
    digest = config_digest({
        "area": "sim",
        "engine_events": _ENGINE_EVENTS,
        "machine": _canonical(machine),
        "workload": _canonical(workload),
        "seed": seed,
    })

    # raw Engine micro-bench: seeded delays, every 4th event cancelled to
    # exercise the tombstone/compaction path
    rng = random.Random(seed)
    delays = [rng.random() * 1e-3 for _ in range(_ENGINE_EVENTS)]

    def engine_rep() -> Tuple[float, object]:
        eng = Engine()

        def noop(_arg: float) -> None:
            pass

        t0 = time.perf_counter()
        cancels = []
        for i, delay in enumerate(delays):
            handle = eng.schedule(delay, noop, 0.0)
            if i % 4 == 0:
                cancels.append(handle)
        for handle in cancels:
            eng.cancel(handle)
        eng.run()
        return time.perf_counter() - t0, eng.events_processed

    def kernel_rep() -> Tuple[float, object]:
        sched = RdaScheduler(policy=StrictPolicy(), config=machine)
        kernel = Kernel(config=machine, extension=sched)
        kernel.launch(workload)
        t0 = time.perf_counter()
        kernel.run(max_events=5_000_000)
        return time.perf_counter() - t0, kernel.engine.events_processed

    engine_wall, engine_events = _best_of(reps, engine_rep)
    kernel_wall, kernel_events = _best_of(reps, kernel_rep)

    def rec(metric: str, value: float, unit: str, wall: float) -> BenchRecord:
        return BenchRecord(
            area="sim", metric=metric, value=value, unit=unit,
            seed=seed, config_digest=digest, wall_s=round(wall, 6),
        )

    return [
        rec("engine_events_per_s", round(engine_events / engine_wall, 1),
            "events/s", engine_wall),
        rec("events_per_s", round(kernel_events / kernel_wall, 1),
            "events/s", kernel_wall),
        rec("events_total", float(kernel_events), "events", kernel_wall),
    ]


# ----------------------------------------------------------------------
# serve: admissions/sec + admission latency via the metrics registry
# ----------------------------------------------------------------------
# 400 sessions keep the p99 a real percentile (several samples above it)
# instead of a max-of-80 extreme value that jitters 4x on a noisy host
_SERVE_SESSIONS = 400
_SERVE_CLIENTS = 4
_SERVE_CAPACITY_MB = 8.0
_SERVE_DEMAND_MB = 6.3


def _serve_machine() -> MachineConfig:
    """Default machine with the managed LLC resized to the bench capacity."""
    machine = default_machine_config()
    quantum = machine.llc.line_bytes * machine.llc.associativity
    capacity = int(_SERVE_CAPACITY_MB * 1024 * 1024) // quantum * quantum
    return replace(machine, llc=replace(machine.llc, capacity_bytes=capacity))


def bench_serve(seed: int, reps: int) -> List[BenchRecord]:
    # imported lazily so `repro bench --areas sim` works even if the serve
    # stack is unavailable (it has no extra deps today, but keep it isolated)
    from ..serve.loadgen import LoadgenConfig, fig4_scripts, run_loadgen
    from ..serve.server import AdmissionServer, ServeConfig

    machine = _serve_machine()
    policy = StrictPolicy()
    scripts = fig4_scripts(
        n=_SERVE_CLIENTS, demand_mb=_SERVE_DEMAND_MB, hold_s=0.0
    )
    load_cfg = LoadgenConfig(
        mode="closed", clients=_SERVE_CLIENTS, sessions=_SERVE_SESSIONS,
        time_scale=1.0, seed=seed,
    )
    digest = config_digest({
        "area": "serve",
        "machine": _canonical(machine),
        "policy": _canonical(policy),
        "scripts": _canonical(list(scripts)),
        "loadgen": _canonical(load_cfg),
    })

    async def one_run(tmp_sock: str):
        server = AdmissionServer(ServeConfig(policy=policy, machine=machine))
        await server.start(unix_path=tmp_sock)
        run_task = asyncio.ensure_future(server.run_until_drained())
        t0 = time.perf_counter()
        report = await run_loadgen(scripts, load_cfg, unix_path=tmp_sock)
        wall = time.perf_counter() - t0
        server.request_drain()
        await asyncio.wait_for(run_task, 30.0)
        # read the service's own registry, not the client-side tally: the
        # serve bench guards the server hot path end to end
        snapshot = server.service.metrics.snapshot()
        return wall, report, snapshot

    def serve_rep() -> List[BenchRecord]:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            wall, report, snapshot = asyncio.run(one_run(f"{tmp}/bench.sock"))
        hist = snapshot["histograms"]["admission_latency_s"]

        def rec(metric: str, value: float, unit: str) -> BenchRecord:
            return BenchRecord(
                area="serve", metric=metric, value=value, unit=unit,
                seed=seed, config_digest=digest, wall_s=round(wall, 6),
            )

        return [
            rec("admissions_per_s", round(report.admitted / wall, 1),
                "admissions/s"),
            rec("admission_latency_p50_s", round(float(hist["p50"]), 9), "s"),
            rec("admission_latency_p99_s", round(float(hist["p99"]), 9), "s"),
            rec("admitted_total", float(report.admitted), "admissions"),
        ]

    return _merge_best([serve_rep() for _ in range(max(1, reps))])


# ----------------------------------------------------------------------
# serve_overload: shed throughput + bounded sojourn under saturation
# ----------------------------------------------------------------------
# 8 clients racing for a capacity that fits one 6.3 MB period at a time,
# each holding 10 ms, keeps the pending queue past max_pending for the
# whole run: the shedding paths (adaptive RETRY_AFTER, park deadlines)
# are the hot path being timed, not a corner case
_OVERLOAD_SESSIONS = 160
_OVERLOAD_CLIENTS = 8
_OVERLOAD_DEMAND_MB = 6.3
_OVERLOAD_HOLD_S = 0.01
_OVERLOAD_MAX_PENDING = 4
_OVERLOAD_PARK_DEADLINE_S = 0.03
_OVERLOAD_HINT_FLOOR_S = 0.005
_OVERLOAD_HINT_CAP_S = 0.03


def bench_serve_overload(seed: int, reps: int) -> List[BenchRecord]:
    # lazy import, same reasoning as bench_serve
    from ..serve.loadgen import LoadgenConfig, fig4_scripts, run_loadgen
    from ..serve.server import AdmissionServer, ServeConfig

    machine = _serve_machine()
    policy = StrictPolicy()
    scripts = fig4_scripts(
        n=_OVERLOAD_CLIENTS, demand_mb=_OVERLOAD_DEMAND_MB,
        hold_s=_OVERLOAD_HOLD_S,
    )
    serve_cfg = dict(
        max_pending=_OVERLOAD_MAX_PENDING,
        park_deadline_s=_OVERLOAD_PARK_DEADLINE_S,
        retry_hint_floor_s=_OVERLOAD_HINT_FLOOR_S,
        retry_hint_cap_s=_OVERLOAD_HINT_CAP_S,
        max_pending_per_client=1,
        write_timeout_s=1.0,
    )
    load_cfg = LoadgenConfig(
        mode="closed", clients=_OVERLOAD_CLIENTS, sessions=_OVERLOAD_SESSIONS,
        time_scale=1.0, max_retries=16, seed=seed,
    )
    digest = config_digest({
        "area": "serve_overload",
        "machine": _canonical(machine),
        "policy": _canonical(policy),
        "serve": serve_cfg,
        "scripts": _canonical(list(scripts)),
        "loadgen": _canonical(load_cfg),
    })

    async def one_run(tmp_sock: str):
        server = AdmissionServer(
            ServeConfig(policy=policy, machine=machine, **serve_cfg)
        )
        await server.start(unix_path=tmp_sock)
        run_task = asyncio.ensure_future(server.run_until_drained())
        t0 = time.perf_counter()
        report = await run_loadgen(scripts, load_cfg, unix_path=tmp_sock)
        wall = time.perf_counter() - t0
        server.request_drain()
        await asyncio.wait_for(run_task, 60.0)
        snapshot = server.service.metrics.snapshot()
        return wall, report, snapshot

    def overload_rep() -> List[BenchRecord]:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            wall, report, snapshot = asyncio.run(one_run(f"{tmp}/bench.sock"))
        sojourn = snapshot["histograms"]["queue_sojourn_s"]

        def rec(metric: str, value: float, unit: str) -> BenchRecord:
            return BenchRecord(
                area="serve_overload", metric=metric, value=value, unit=unit,
                seed=seed, config_digest=digest, wall_s=round(wall, 6),
            )

        # Shed counts are timing-dependent, so only the rates and the
        # deadline-pinned sojourn tail are gated; the counts ride along
        # as informational context (non-rate, non-seconds units).
        return [
            rec("calls_per_s", round(report.calls / wall, 1), "calls/s"),
            rec("queue_sojourn_p99_s", round(float(sojourn["p99"]), 9), "s"),
            rec("admitted_total", float(report.admitted), "admissions"),
            rec("shed_total", float(report.shed_calls), "sheds"),
        ]

    return _merge_best([overload_rep() for _ in range(max(1, reps))])


# ----------------------------------------------------------------------
# serve_predict: admission throughput recovered from annotation error
# ----------------------------------------------------------------------
# Every client declares 2x its true working set, so only one declared
# period fits the 8 MB LLC at a time even though two true ones would.
# The declared pass times that loss; the predict pass times the same
# workload with the online estimator correcting the annotations, which
# is the paper's demand-awareness argument turned on the annotations
# themselves.  ``hold_s`` keeps periods open long enough that admission
# concurrency (not protocol round-trips) dominates the wall clock.
_PREDICT_SESSIONS = 120
_PREDICT_CLIENTS = 4
_PREDICT_DEMAND_MB = 3.2
_PREDICT_OVERDECLARE = 2.0
_PREDICT_HOLD_S = 0.005
_PREDICT_MIN_SAMPLES = 3


def bench_serve_predict(seed: int, reps: int) -> List[BenchRecord]:
    # lazy import, same reasoning as bench_serve
    from ..serve.loadgen import LoadgenConfig, fig4_scripts, run_loadgen
    from ..serve.server import AdmissionServer, ServeConfig

    machine = _serve_machine()
    policy = StrictPolicy()
    scripts = fig4_scripts(
        n=_PREDICT_CLIENTS, demand_mb=_PREDICT_DEMAND_MB,
        hold_s=_PREDICT_HOLD_S,
    )
    predict_cfg = dict(
        predict=True,
        predict_min_samples=_PREDICT_MIN_SAMPLES,
    )
    load_cfg = LoadgenConfig(
        mode="closed", clients=_PREDICT_CLIENTS, sessions=_PREDICT_SESSIONS,
        time_scale=1.0, overdeclare=_PREDICT_OVERDECLARE,
        report_observed=True, seed=seed,
    )
    digest = config_digest({
        "area": "serve_predict",
        "machine": _canonical(machine),
        "policy": _canonical(policy),
        "predict": predict_cfg,
        "scripts": _canonical(list(scripts)),
        "loadgen": _canonical(load_cfg),
    })

    async def one_run(tmp_sock: str, predict: bool):
        cfg = ServeConfig(policy=policy, machine=machine)
        if predict:
            cfg = replace(cfg, **predict_cfg)
        server = AdmissionServer(cfg)
        await server.start(unix_path=tmp_sock)
        run_task = asyncio.ensure_future(server.run_until_drained())
        t0 = time.perf_counter()
        report = await run_loadgen(scripts, load_cfg, unix_path=tmp_sock)
        wall = time.perf_counter() - t0
        server.request_drain()
        await asyncio.wait_for(run_task, 60.0)
        snapshot = server.service.metrics.snapshot()
        return wall, report, snapshot

    def predict_rep() -> List[BenchRecord]:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            wall_decl, rep_decl, _ = asyncio.run(
                one_run(f"{tmp}/declared.sock", predict=False)
            )
            wall_pred, rep_pred, snap = asyncio.run(
                one_run(f"{tmp}/predict.sock", predict=True)
            )
        counters = snap["counters"]

        def rec(metric: str, value: float, unit: str,
                wall: float) -> BenchRecord:
            return BenchRecord(
                area="serve_predict", metric=metric, value=value, unit=unit,
                seed=seed, config_digest=digest, wall_s=round(wall, 6),
            )

        # Both throughputs are gated (rate units); the estimator/elastic
        # counters ride along as informational context.
        return [
            rec("admissions_per_s_declared",
                round(rep_decl.admitted / wall_decl, 1),
                "admissions/s", wall_decl),
            rec("admissions_per_s_predicted",
                round(rep_pred.admitted / wall_pred, 1),
                "admissions/s", wall_pred),
            rec("predicted_admits_total",
                float(counters["predicted_admits_total"]),
                "admissions", wall_pred),
            rec("elastic_shrinks_total",
                float(counters["elastic_shrinks_total"]),
                "shrinks", wall_pred),
        ]

    return _merge_best([predict_rep() for _ in range(max(1, reps))])


# ----------------------------------------------------------------------
# cluster: admissions/sec through the sharded front-end placer
# ----------------------------------------------------------------------
_CLUSTER_SHARDS = 3
_CLUSTER_SESSIONS = 240
_CLUSTER_CLIENTS = 6
_CLUSTER_DEMAND_MB = 5.1


def bench_cluster(seed: int, reps: int) -> List[BenchRecord]:
    # lazy import, same reasoning as bench_serve
    from ..serve.cluster import start_local_cluster
    from ..serve.loadgen import LoadgenConfig, fig4_scripts, run_loadgen
    from ..serve.server import ServeConfig

    machine = _serve_machine()
    policy = StrictPolicy()
    scripts = fig4_scripts(
        n=_CLUSTER_CLIENTS, demand_mb=_CLUSTER_DEMAND_MB, hold_s=0.0
    )
    load_cfg = LoadgenConfig(
        mode="closed", clients=_CLUSTER_CLIENTS, sessions=_CLUSTER_SESSIONS,
        time_scale=1.0, seed=seed, cluster=True, binary=True,
    )
    digest = config_digest({
        "area": "cluster",
        "shards": _CLUSTER_SHARDS,
        "machine": _canonical(machine),
        "policy": _canonical(policy),
        "scripts": _canonical(list(scripts)),
        "loadgen": _canonical(load_cfg),
    })

    async def one_run(tmp_sock: str):
        cluster = await start_local_cluster(
            ServeConfig(policy=policy, machine=machine),
            _CLUSTER_SHARDS, tmp_sock, seed=seed,
        )
        run_task = asyncio.ensure_future(cluster.run_until_drained())
        t0 = time.perf_counter()
        report = await run_loadgen(scripts, load_cfg, unix_path=tmp_sock)
        wall = time.perf_counter() - t0
        cluster.request_drain()
        await asyncio.wait_for(run_task, 30.0)
        frontend = cluster.frontend
        counters = {
            "placements": frontend.c_placements.value,
            "redirects": frontend.c_redirects.value,
            "forwards": frontend.c_forwards.value,
            "migrations": frontend.c_migrations.value,
            "fragmentation_peak": frontend._frag_peak,
        }
        return wall, report, counters

    def cluster_rep() -> List[BenchRecord]:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            wall, report, counters = asyncio.run(one_run(f"{tmp}/placer.sock"))

        def rec(metric: str, value: float, unit: str) -> BenchRecord:
            return BenchRecord(
                area="cluster", metric=metric, value=value, unit=unit,
                seed=seed, config_digest=digest, wall_s=round(wall, 6),
            )

        redirect_p99 = (
            report.redirect_latency.p99 * 1e3
            if report.redirect_latency.count else 0.0
        )
        # Placement-quality records use informational units so the compare
        # gate leaves them out of the pass/fail decision.
        return [
            rec("admissions_per_s", round(report.admitted / wall, 1),
                "admissions/s"),
            rec("placements_per_s", round(counters["placements"] / wall, 1),
                "placements/s"),
            rec("admitted_total", float(report.admitted), "admissions"),
            rec("redirects_total", float(counters["redirects"]), "redirects"),
            rec("migrations_total", float(counters["migrations"]),
                "migrations"),
            rec("fragmentation_peak",
                round(counters["fragmentation_peak"], 4), "ratio"),
            rec("redirect_latency_p99", round(redirect_p99, 3), "ms"),
        ]

    return _merge_best([cluster_rep() for _ in range(max(1, reps))])


# ----------------------------------------------------------------------
# fleet: sims/sec through run_grid with the content-addressed cache
# ----------------------------------------------------------------------
_FLEET_WORKLOADS = ("BLAS-1", "BLAS-2")
_FLEET_MAX_EVENTS = 2_000_000


def _fleet_requests(seed: int) -> List[RunRequest]:
    requests: List[RunRequest] = []
    for name in _FLEET_WORKLOADS:
        for policy in (StrictPolicy(), CompromisePolicy(oversubscription=1.5)):
            requests.append(RunRequest(
                workload=workload_by_name(name), policy=policy,
                max_events=_FLEET_MAX_EVENTS, seed=seed, tag="bench",
            ))
    return requests


def bench_fleet(
    seed: int, cache_dir: Optional[str] = None, jobs: Optional[int] = None
) -> List[BenchRecord]:
    requests = _fleet_requests(seed)
    digest = config_digest({
        "area": "fleet",
        "run_keys": [run_key(r) for r in requests],
        "seed": seed,
    })
    cache = ResultCache(cache_dir) if cache_dir else ResultCache()

    t0 = time.perf_counter()
    outcomes = run_grid(requests, jobs=jobs, cache=cache)
    wall = time.perf_counter() - t0

    successes = [o for o in outcomes if isinstance(o, RunSuccess)]
    failures = len(outcomes) - len(successes)
    gflops = sum(o.report.gflops for o in successes)

    def rec(metric: str, value: float, unit: str) -> BenchRecord:
        return BenchRecord(
            area="fleet", metric=metric, value=value, unit=unit,
            seed=seed, config_digest=digest, wall_s=round(wall, 6),
        )

    return [
        rec("sims_per_s", round(len(successes) / wall, 3), "sims/s"),
        rec("runs_total", float(len(outcomes)), "runs"),
        rec("failures", float(failures), "runs"),
        rec("gflops_total", round(gflops, 6), "GFLOPS"),
    ]
