"""``repro bench`` — the repository's performance benchmark harness.

Three pinned, seeded workloads (simulator kernel, admission service,
experiment fleet) reduced to flat JSON records with a stable schema; see
``docs/BENCHMARKS.md`` and :mod:`repro.bench.schema`.
"""

from .compare import compare_records, format_problems
from .runner import AREA_NAMES, BENCH_FILES, BenchOptions, run_bench
from .schema import (
    RECORD_FIELDS, BenchError, BenchRecord, config_digest, load_records,
    write_records,
)

__all__ = [
    "AREA_NAMES",
    "BENCH_FILES",
    "BenchError",
    "BenchOptions",
    "BenchRecord",
    "RECORD_FIELDS",
    "compare_records",
    "config_digest",
    "format_problems",
    "load_records",
    "run_bench",
    "write_records",
]
