"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "SchedulerError",
    "ProgressPeriodError",
    "UnknownProgressPeriodError",
    "BlockingSyncInPeriodError",
    "ResourceError",
    "ProfilerError",
    "WorkloadError",
    "SanitizerError",
    "ProtocolError",
    "ServeError",
    "JournalError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """Invalid machine or policy configuration."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SchedulerError(ReproError):
    """The OS scheduler substrate was misused (e.g. waking a dead thread)."""


class ProgressPeriodError(ReproError):
    """Misuse of the progress-period API."""


class UnknownProgressPeriodError(ProgressPeriodError):
    """``pp_end`` was called with an identifier that is not registered."""

    def __init__(self, pp_id: int) -> None:
        super().__init__(f"unknown progress period id {pp_id!r}")
        self.pp_id = pp_id


class BlockingSyncInPeriodError(ProgressPeriodError):
    """A thread attempted a blocking synchronization inside a progress period.

    The paper (section 3.4) forbids blocking synchronization within a progress
    period because a paused sibling could deadlock the group; durations that
    contain synchronization must run under the default OS policy instead.
    """


class ResourceError(ReproError):
    """Resource accounting violated an invariant (e.g. negative load)."""


class ProfilerError(ReproError):
    """Profiling or period detection failed."""


class WorkloadError(ReproError):
    """A workload definition is malformed."""


class SanitizerError(ReproError):
    """The kernel sanitizer detected one or more invariant violations."""


class ProtocolError(ReproError):
    """A ``repro.serve`` wire frame is malformed or violates the protocol."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServeError(ReproError):
    """The admission-control service reached an invalid state."""


class JournalError(ServeError):
    """The admission journal is corrupt beyond the tolerated torn tail."""
