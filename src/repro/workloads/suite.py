"""The eight workloads of Table 2.

========== ======= ============= ===================== =====================
Workload   # Proc  Threads/Proc  Work-set sizes (MB)   Data reuses
========== ======= ============= ===================== =====================
BLAS-1     96      1             .6                    low
BLAS-2     96      1             .6                    med
BLAS-3     96      1             1.6, 2.4, 2.4, 3.2    high
Water_sp   12      2             1.6, 1.3, 1.3, 1.6    low ×4
Water_nsq  12      2             3.6, 3.6, 3.7         high ×3
Ocean_cp   48      2             2.1, 0.76, 1.5, 0.59  high, med, high, med
Raytrace   48      4             5.1, 5.2              high, high
Volrend    48      4             1.8, 1.7              high, high
========== ======= ============= ===================== =====================

Each BLAS level groups its four kernels into one 96-process workload
(24 processes per kernel); each SPLASH-2 application is its own workload.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import WorkloadError
from .base import ProcessSpec, Workload
from .blas import BLAS1_KERNELS, BLAS2_KERNELS, BLAS3_KERNELS, kernel_process
from .splash2 import (
    ocean_cp_workload,
    raytrace_workload,
    volrend_workload,
    water_nsquared_workload,
    water_spatial_workload,
)

__all__ = ["WORKLOAD_NAMES", "table2_workloads", "workload_by_name", "blas_workload"]

#: canonical workload order used by every figure
WORKLOAD_NAMES = (
    "BLAS-1",
    "BLAS-2",
    "BLAS-3",
    "Water_sp",
    "Water_nsq",
    "Ocean_cp",
    "Raytrace",
    "Volrend",
)


def blas_workload(level: int, n_processes: int = 96) -> Workload:
    """A 96-process workload of one BLAS level's four kernels."""
    kernels = {1: BLAS1_KERNELS, 2: BLAS2_KERNELS, 3: BLAS3_KERNELS}.get(level)
    if kernels is None:
        raise WorkloadError(f"no BLAS level {level}")
    if n_processes % len(kernels):
        raise WorkloadError(
            f"n_processes={n_processes} not divisible by {len(kernels)} kernels"
        )
    per_kernel = n_processes // len(kernels)
    processes: list[ProcessSpec] = []
    # Interleave kernels so arrival order does not group identical demands.
    for i in range(per_kernel):
        for k in kernels:
            processes.append(kernel_process(k.name))
    names = ", ".join(k.name for k in kernels)
    return Workload(
        name=f"BLAS-{level}",
        processes=processes,
        description=f"{n_processes} single-thread processes: {names}",
    )


_BUILDERS: Dict[str, Callable[[], Workload]] = {
    "BLAS-1": lambda: blas_workload(1),
    "BLAS-2": lambda: blas_workload(2),
    "BLAS-3": lambda: blas_workload(3),
    "Water_sp": water_spatial_workload,
    "Water_nsq": water_nsquared_workload,
    "Ocean_cp": ocean_cp_workload,
    "Raytrace": raytrace_workload,
    "Volrend": volrend_workload,
}


def workload_by_name(name: str) -> Workload:
    """Build one Table 2 workload by its canonical name."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; expected one of {WORKLOAD_NAMES}"
        ) from None


def table2_workloads() -> dict[str, Workload]:
    """All eight workloads, in the canonical order."""
    return {name: workload_by_name(name) for name in WORKLOAD_NAMES}
