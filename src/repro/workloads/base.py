"""Workload abstractions: phases, programs, processes and workloads.

A *phase* is the unit of modelled execution: a stretch of instructions with
constant operational intensity and working-set behaviour.  Phases optionally
carry a :class:`PpSpec` that turns them into declared progress periods —
exactly the paper's model, where "a single progress period describes a
duration of an application execution where its resource demand for data
storage remains roughly constant".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Hashable, Optional, Sequence

from ..core.progress_period import PeriodRequest, ResourceKind, ReuseLevel
from ..errors import WorkloadError

__all__ = [
    "PhaseKind",
    "PpSpec",
    "Phase",
    "ProcessSpec",
    "Workload",
    "compute_phase",
    "barrier_phase",
]


class PhaseKind(enum.Enum):
    COMPUTE = "compute"
    BARRIER = "barrier"  # blocking sync with process siblings (outside PPs)


@dataclass(frozen=True)
class PpSpec:
    """Progress-period declaration attached to a phase.

    Attributes:
        demand_bytes: declared working-set size (``None`` → the phase's
            actual ``wss_bytes``; letting them differ models inaccurate
            annotations).
        reuse: declared reuse level (``None`` → derived from the phase's
            numeric reuse fraction).
        subperiods: how many equal sub-periods the phase is broken into —
            the granularity experiment of figure 11 (1 = outermost loop).
    """

    demand_bytes: Optional[int] = None
    reuse: Optional[ReuseLevel] = None
    subperiods: int = 1

    def __post_init__(self) -> None:
        if self.subperiods < 1:
            raise WorkloadError("subperiods must be >= 1")


@dataclass(frozen=True)
class Phase:
    """One modelled stretch of execution with constant resource behaviour.

    Attributes:
        name: label (also the default working-set sharing scope).
        instructions: dynamic instructions retired by this phase.
        flops_per_instr: double-precision FLOPs per instruction.
        mem_refs_per_instr: loads+stores per instruction.
        llc_refs_per_memref: fraction of memory references that miss the
            private L1/L2 and reach the shared LLC.
        wss_bytes: live working-set size held in the LLC.
        reuse: fraction of LLC references that re-touch the working set and
            hit when it is fully resident (numeric counterpart of the
            paper's low/med/high levels).
        memory_overlap: per-phase override of the machine's memory-level
            parallelism (fraction of a miss's latency hidden by out-of-order
            overlap and prefetching); ``None`` uses the machine default.
            Streaming sweeps prefetch well (high overlap); pointer chasing
            does not.
        pp: progress-period declaration, or ``None`` for un-instrumented
            stretches (scheduled by the default OS policy).
        shared: when True, sibling threads of one process share this phase's
            working set (counted once in the LLC).
        kind: COMPUTE or BARRIER.
    """

    name: str
    instructions: int = 0
    flops_per_instr: float = 0.0
    mem_refs_per_instr: float = 0.3
    llc_refs_per_memref: float = 0.1
    wss_bytes: int = 0
    reuse: float = 0.0
    pp: Optional[PpSpec] = None
    shared: bool = False
    kind: PhaseKind = PhaseKind.COMPUTE
    memory_overlap: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind is PhaseKind.COMPUTE and self.instructions <= 0:
            raise WorkloadError(f"phase {self.name!r}: instructions must be positive")
        if self.instructions < 0:
            raise WorkloadError(f"phase {self.name!r}: negative instructions")
        for attr in ("flops_per_instr", "mem_refs_per_instr", "llc_refs_per_memref"):
            if getattr(self, attr) < 0:
                raise WorkloadError(f"phase {self.name!r}: negative {attr}")
        if self.llc_refs_per_memref > 1.0:
            raise WorkloadError(
                f"phase {self.name!r}: llc_refs_per_memref must be <= 1"
            )
        if not 0.0 <= self.reuse <= 1.0:
            raise WorkloadError(f"phase {self.name!r}: reuse must be in [0, 1]")
        if self.wss_bytes < 0:
            raise WorkloadError(f"phase {self.name!r}: negative working set")
        if self.memory_overlap is not None and not 0.0 <= self.memory_overlap < 1.0:
            raise WorkloadError(f"phase {self.name!r}: memory_overlap must be in [0, 1)")

    # ------------------------------------------------------------------
    @property
    def flops(self) -> float:
        return self.flops_per_instr * self.instructions

    @property
    def mem_refs(self) -> float:
        return self.mem_refs_per_instr * self.instructions

    def declared_reuse(self) -> ReuseLevel:
        """Reuse level carried by this phase's PP declaration."""
        if self.pp is not None and self.pp.reuse is not None:
            return self.pp.reuse
        return ReuseLevel.from_fraction(self.reuse)

    def declared_demand(self) -> int:
        """Working-set size carried by this phase's PP declaration."""
        if self.pp is not None and self.pp.demand_bytes is not None:
            return self.pp.demand_bytes
        return self.wss_bytes

    def period_request(self, pid: int) -> PeriodRequest:
        """Build the ``pp_begin`` request a thread in this phase issues."""
        if self.pp is None:
            raise WorkloadError(f"phase {self.name!r} declares no progress period")
        return PeriodRequest(
            resource=ResourceKind.LLC,
            demand_bytes=self.declared_demand(),
            reuse=self.declared_reuse(),
            sharing_key=(pid, self.name) if self.shared else None,
            label=self.name,
        )

    def sharing_scope(self, pid: int) -> Optional[Hashable]:
        """Key under which the *physical* working set is shared (contention
        model); independent of whether a PP is declared."""
        return (pid, self.name) if self.shared else None

    def with_subperiods(self, n: int) -> "Phase":
        """Return a copy split into ``n`` tracked sub-periods (figure 11)."""
        if self.pp is None:
            raise WorkloadError("cannot set sub-periods on an unannotated phase")
        return replace(self, pp=replace(self.pp, subperiods=n))


def compute_phase(
    name: str,
    instructions: int,
    *,
    flops_per_instr: float = 0.0,
    mem_refs_per_instr: float = 0.3,
    llc_refs_per_memref: float = 0.1,
    wss_bytes: int = 0,
    reuse: float = 0.0,
    declare_pp: bool = True,
    declared_demand: Optional[int] = None,
    declared_reuse: Optional[ReuseLevel] = None,
    shared: bool = False,
    subperiods: int = 1,
) -> Phase:
    """Convenience constructor for an (optionally PP-annotated) compute phase."""
    pp = (
        PpSpec(demand_bytes=declared_demand, reuse=declared_reuse, subperiods=subperiods)
        if declare_pp
        else None
    )
    return Phase(
        name=name,
        instructions=instructions,
        flops_per_instr=flops_per_instr,
        mem_refs_per_instr=mem_refs_per_instr,
        llc_refs_per_memref=llc_refs_per_memref,
        wss_bytes=wss_bytes,
        reuse=reuse,
        pp=pp,
        shared=shared,
    )


def barrier_phase(name: str = "barrier") -> Phase:
    """A blocking synchronization point with all process siblings.

    Barriers sit *between* progress periods: the paper forbids blocking
    synchronization inside a period (§3.4), so durations containing sync run
    under the default OS policy — here, a plain unannotated phase.
    """
    return Phase(name=name, instructions=0, kind=PhaseKind.BARRIER)


@dataclass(frozen=True)
class ProcessSpec:
    """Blueprint of one process: per-thread programs.

    All threads run the same program unless ``per_thread_programs`` is given.
    ``nice`` is the Unix niceness (−20…19); the fair scheduler converts it
    to a CFS-style weight so nicer processes accumulate virtual runtime
    faster and receive proportionally less CPU.
    """

    name: str
    program: Sequence[Phase]
    n_threads: int = 1
    per_thread_programs: Optional[Sequence[Sequence[Phase]]] = None
    nice: int = 0

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise WorkloadError("n_threads must be >= 1")
        if self.per_thread_programs is not None and len(
            self.per_thread_programs
        ) != self.n_threads:
            raise WorkloadError("per_thread_programs length must equal n_threads")
        if not -20 <= self.nice <= 19:
            raise WorkloadError("nice must be in [-20, 19]")

    def program_for(self, thread_index: int) -> Sequence[Phase]:
        if self.per_thread_programs is not None:
            return self.per_thread_programs[thread_index]
        return self.program


@dataclass(frozen=True)
class Workload:
    """A named collection of processes launched together (one Table 2 row)."""

    name: str
    processes: Sequence[ProcessSpec]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.processes:
            raise WorkloadError(f"workload {self.name!r} has no processes")

    @property
    def n_processes(self) -> int:
        return len(self.processes)

    @property
    def n_threads(self) -> int:
        return sum(p.n_threads for p in self.processes)

    def total_flops(self) -> float:
        """FLOPs the workload retires, for GFLOPS accounting."""
        total = 0.0
        for proc in self.processes:
            for t in range(proc.n_threads):
                total += sum(ph.flops for ph in proc.program_for(t))
        return total


def mix_workloads(*workloads: Workload, name: str = "") -> Workload:
    """Consolidate several workloads into one multi-programmed mix.

    Processes are interleaved round-robin across the inputs so no single
    application's processes arrive as a contiguous block — the arrival
    pattern of independent jobs landing on a shared node.  This builds the
    consolidation scenarios the paper motivates ("when scheduling multiple
    processes together, their concurrent resource accesses may cause
    interferences") beyond its single-application workloads.
    """
    if not workloads:
        raise WorkloadError("need at least one workload to mix")
    lanes = [list(w.processes) for w in workloads]
    mixed: list[ProcessSpec] = []
    while any(lanes):
        for lane in lanes:
            if lane:
                mixed.append(lane.pop(0))
    return Workload(
        name=name or "+".join(w.name for w in workloads),
        processes=mixed,
        description="mix of: " + "; ".join(w.name for w in workloads),
    )
