"""Phase models of the 12 BLAS kernels (Table 2).

The paper groups the kernels by BLAS level:

* **BLAS-1** (daxpy, dcopy, dscal, dswap) — vector-vector, working set
  0.6 MB, *low* cache reuse (pure streaming; every sweep touches each line
  about once).
* **BLAS-2** (dgemv N/T, dtrmv, dtrsv) — matrix-vector, 0.6 MB, *medium*
  reuse (the matrix is streamed within a call but re-swept every call; the
  vectors live in the private caches).
* **BLAS-3** (dgemm, dsyrk, dtrmm, dtrsm) — matrix-matrix, 1.6 / 2.4 / 2.4 /
  3.2 MB, *high* reuse (loop-blocked so each block is touched many times;
  "each BLAS kernel ... has been optimized with loop blocking so that
  individually its working set size fits within the last-level cache").

Each kernel is modelled by its operational intensity: FLOPs and memory
references per instruction from the kernel's arithmetic, the fraction of
references reaching the LLC from its blocking structure (streaming kernels
miss the private caches once per 64-byte line → 1/8 per reference; blocked
kernels filter most traffic in L2), and the Table 2 working set and reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.progress_period import ReuseLevel
from ..errors import WorkloadError
from .base import Phase, PpSpec, ProcessSpec

__all__ = [
    "BlasKernelModel",
    "BLAS1_KERNELS",
    "BLAS2_KERNELS",
    "BLAS3_KERNELS",
    "ALL_KERNELS",
    "kernel_model",
    "kernel_phase",
    "kernel_process",
    "dgemm_process",
]

MB = 1_000_000  # Table 2 working-set sizes are decimal megabytes


@dataclass(frozen=True)
class BlasKernelModel:
    """Operational model of one BLAS kernel."""

    name: str
    level: int
    wss_bytes: int
    reuse: float
    reuse_level: ReuseLevel
    flops_per_instr: float
    mem_refs_per_instr: float
    llc_refs_per_memref: float
    instructions: int  # per kernel invocation (problem sized per Table 2)
    repetitions: int  # invocations per process

    def scaled(self, factor: float) -> "BlasKernelModel":
        """This kernel at a different problem size.

        ``factor`` scales the matrix/vector dimension.  Work scales with
        the kernel's algorithmic order (level 1/2/3 → n / n² / n³) and the
        working set with its storage order (n for vectors, n² for
        matrices); the intensity parameters are preserved by the blocking.
        """
        if factor <= 0:
            raise WorkloadError("scale factor must be positive")
        from dataclasses import replace

        work_order = {1: 1.0, 2: 2.0, 3: 3.0}[self.level]
        wss_order = 1.0 if self.level == 1 else 2.0
        return replace(
            self,
            name=f"{self.name}@{factor:g}x",
            wss_bytes=int(self.wss_bytes * factor**wss_order),
            instructions=int(self.instructions * factor**work_order),
        )

    def phase(self, subperiods: int = 1, declare_pp: bool = True) -> Phase:
        """The kernel as one progress period (the paper's configuration)."""
        pp: Optional[PpSpec] = None
        if declare_pp:
            pp = PpSpec(
                demand_bytes=self.wss_bytes,
                reuse=self.reuse_level,
                subperiods=subperiods,
            )
        return Phase(
            name=self.name,
            instructions=self.instructions * self.repetitions,
            flops_per_instr=self.flops_per_instr,
            mem_refs_per_instr=self.mem_refs_per_instr,
            llc_refs_per_memref=self.llc_refs_per_memref,
            wss_bytes=self.wss_bytes,
            reuse=self.reuse,
            pp=pp,
        )


# ----------------------------------------------------------------------
# BLAS-1: vector-vector, n sized so the vectors total 0.6 MB.
# daxpy streams x and y (2 FLOPs per element over ~5 instructions);
# dcopy/dswap move data with no FLOPs; dscal touches one vector.
# Streaming reaches the LLC once per line: 1/8 of references.
# ----------------------------------------------------------------------
_BLAS1_COMMON = dict(
    level=1,
    wss_bytes=int(0.6 * MB),
    reuse=0.08,
    reuse_level=ReuseLevel.LOW,
    llc_refs_per_memref=0.125,
)

BLAS1_KERNELS: tuple[BlasKernelModel, ...] = (
    BlasKernelModel(
        name="daxpy",
        flops_per_instr=0.40,
        mem_refs_per_instr=0.60,
        instructions=187_500,  # 5 instr/element, n = 37 500 (two vectors)
        repetitions=160,
        **_BLAS1_COMMON,
    ),
    BlasKernelModel(
        name="dcopy",
        flops_per_instr=0.0,
        mem_refs_per_instr=0.50,
        instructions=150_000,  # 4 instr/element
        repetitions=200,
        **_BLAS1_COMMON,
    ),
    BlasKernelModel(
        name="dscal",
        flops_per_instr=0.25,
        mem_refs_per_instr=0.50,
        instructions=300_000,  # one 0.6 MB vector, n = 75 000
        repetitions=100,
        **_BLAS1_COMMON,
    ),
    BlasKernelModel(
        name="dswap",
        flops_per_instr=0.0,
        mem_refs_per_instr=0.67,
        instructions=225_000,  # 6 instr/element (2 loads + 2 stores)
        repetitions=130,
        **_BLAS1_COMMON,
    ),
)

# ----------------------------------------------------------------------
# BLAS-2: matrix-vector with n = 274 (n^2 doubles = 0.6 MB).  The matrix
# streams through the LLC (re-swept every invocation: medium reuse); the
# vectors stay in L1/L2, so only matrix traffic reaches the LLC.
# ----------------------------------------------------------------------
_BLAS2_COMMON = dict(
    level=2,
    wss_bytes=int(0.6 * MB),
    reuse=0.55,
    reuse_level=ReuseLevel.MEDIUM,
    llc_refs_per_memref=0.07,
    instructions=190_000,  # ~2.5 instr per matrix element
)

BLAS2_KERNELS: tuple[BlasKernelModel, ...] = (
    BlasKernelModel(
        name="dgemvN", flops_per_instr=0.80, mem_refs_per_instr=0.80,
        repetitions=260, **_BLAS2_COMMON,
    ),
    BlasKernelModel(
        name="dgemvT", flops_per_instr=0.80, mem_refs_per_instr=0.80,
        repetitions=260, **_BLAS2_COMMON,
    ),
    BlasKernelModel(
        name="dtrmv", flops_per_instr=0.78, mem_refs_per_instr=0.80,
        repetitions=300, **_BLAS2_COMMON,
    ),
    BlasKernelModel(
        name="dtrsv", flops_per_instr=0.75, mem_refs_per_instr=0.82,
        repetitions=300, **_BLAS2_COMMON,
    ),
)

# ----------------------------------------------------------------------
# BLAS-3: loop-blocked matrix-matrix (n = 512 for dgemm: 2n^3 = 268 MFLOPs
# over ~134 M instructions at 2 FLOPs/instruction).  Blocking keeps most
# traffic in L2; the LLC holds the Table 2 working set with high reuse.
# ----------------------------------------------------------------------
_BLAS3_COMMON = dict(
    level=3,
    reuse=0.92,
    reuse_level=ReuseLevel.HIGH,
    llc_refs_per_memref=0.038,
    mem_refs_per_instr=0.50,
    repetitions=1,
)

BLAS3_KERNELS: tuple[BlasKernelModel, ...] = (
    BlasKernelModel(
        name="dgemm", wss_bytes=int(1.6 * MB), flops_per_instr=2.0,
        instructions=134_000_000, **_BLAS3_COMMON,
    ),
    BlasKernelModel(
        name="dsyrk", wss_bytes=int(2.4 * MB), flops_per_instr=2.0,
        instructions=100_000_000, **_BLAS3_COMMON,
    ),
    BlasKernelModel(
        name="dtrmm", wss_bytes=int(2.4 * MB), flops_per_instr=1.9,
        instructions=100_000_000, **_BLAS3_COMMON,
    ),
    BlasKernelModel(
        name="dtrsm", wss_bytes=int(3.2 * MB), flops_per_instr=1.8,
        instructions=110_000_000, **_BLAS3_COMMON,
    ),
)

ALL_KERNELS: tuple[BlasKernelModel, ...] = (
    BLAS1_KERNELS + BLAS2_KERNELS + BLAS3_KERNELS
)


def kernel_model(name: str) -> BlasKernelModel:
    """Look up a kernel model by name."""
    for k in ALL_KERNELS:
        if k.name == name:
            return k
    raise WorkloadError(f"unknown BLAS kernel {name!r}")


def kernel_phase(name: str, subperiods: int = 1, declare_pp: bool = True) -> Phase:
    """Convenience: one kernel's phase."""
    return kernel_model(name).phase(subperiods=subperiods, declare_pp=declare_pp)


def kernel_process(name: str, subperiods: int = 1) -> ProcessSpec:
    """One single-threaded process running one kernel as one progress period."""
    return ProcessSpec(name=name, program=[kernel_phase(name, subperiods)])


def dgemm_process(subperiods: int = 1) -> ProcessSpec:
    """The figure 11 subject: dgemm with configurable tracking granularity.

    ``subperiods=1`` places the progress period at the outermost loop,
    ``512`` at the middle loop, and ``512 ** 2 = 262144`` at the innermost
    loop — the paper's three decomposition strategies.
    """
    return kernel_process("dgemm", subperiods=subperiods)
