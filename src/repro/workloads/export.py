"""Export workload progress-period sequences for online replay.

The batch harness hands whole :class:`~repro.workloads.base.Workload`
objects to the simulated kernel.  The online path (:mod:`repro.serve`)
instead needs each thread's *wire-level* call sequence — the ordered
``pp_begin(demand, reuse)`` / hold / ``pp_end`` calls it would issue
against a live admission server.  This module flattens a workload into
those sequences, estimating each phase's hold time from the machine model
(instructions / (IPC × frequency)) so replayed load has the same *shape*
(demand mix, relative durations) as the simulated original, scaled by the
load generator's ``time_scale``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import MachineConfig, default_machine_config
from .base import Phase, PhaseKind, Workload

__all__ = ["PpCall", "SessionScript", "export_pp_sequences"]


@dataclass(frozen=True)
class PpCall:
    """One wire-level progress period: begin, hold, end.

    ``reuse`` is the protocol-level name (``"low" | "med" | "high"``);
    ``sharing_key`` marks working sets shared by sibling threads of one
    process so the server charges them once, as §3.2 prescribes.
    """

    demand_bytes: int
    reuse: str
    hold_s: float
    label: str = ""
    sharing_key: Optional[str] = None


@dataclass(frozen=True)
class SessionScript:
    """One client session: the PP calls one thread issues, in order."""

    name: str
    calls: tuple[PpCall, ...]

    @property
    def total_hold_s(self) -> float:
        return sum(c.hold_s for c in self.calls)

    @property
    def peak_demand_bytes(self) -> int:
        return max((c.demand_bytes for c in self.calls), default=0)


def _phase_hold_s(phase: Phase, config: MachineConfig) -> float:
    """First-order phase duration: retired instructions at base IPC."""
    rate = config.cpu.base_ipc * config.cpu.frequency_hz
    return phase.instructions / rate if rate > 0 else 0.0


def export_pp_sequences(
    workload: Workload,
    config: Optional[MachineConfig] = None,
    max_sessions: Optional[int] = None,
) -> List[SessionScript]:
    """Flatten a workload into one :class:`SessionScript` per thread.

    Only PP-annotated compute phases become calls (un-instrumented
    stretches and barriers have no wire footprint — the server never hears
    about them, exactly as the kernel never hears from unannotated code).
    Threads of one process that share a phase's working set carry a
    ``sharing_key`` scoped to (process index, phase name).

    Args:
        max_sessions: truncate the export (e.g. take 16 of BLAS-1's 96
            single-thread processes for a smoke test); ``None`` = all.
    """
    config = config or default_machine_config()
    scripts: List[SessionScript] = []
    for proc_index, spec in enumerate(workload.processes):
        for thread_index in range(spec.n_threads):
            calls: List[PpCall] = []
            for phase in spec.program_for(thread_index):
                if phase.kind is not PhaseKind.COMPUTE or phase.pp is None:
                    continue
                sharing_key = (
                    f"p{proc_index}/{phase.name}" if phase.shared else None
                )
                calls.append(
                    PpCall(
                        demand_bytes=phase.declared_demand(),
                        reuse=phase.declared_reuse().value,
                        hold_s=_phase_hold_s(phase, config),
                        label=f"{spec.name}/{phase.name}",
                        sharing_key=sharing_key,
                    )
                )
            if calls:
                scripts.append(
                    SessionScript(
                        name=f"{spec.name}#{proc_index}.{thread_index}",
                        calls=tuple(calls),
                    )
                )
            if max_sessions is not None and len(scripts) >= max_sessions:
                return scripts
    return scripts
