"""Workload models: the 12 BLAS kernels and five SPLASH-2 applications.

Applications are modelled as per-thread *programs* — sequences of
:class:`~repro.workloads.base.Phase` objects carrying instruction counts,
operational intensity and working-set behaviour.  The scheduler only ever
observes (a) the declared progress periods and (b) the physics the machine
model derives from the phase parameters, which is the same information the
paper's kernel extension sees.
"""

from .base import (
    Phase,
    PhaseKind,
    PpSpec,
    ProcessSpec,
    Workload,
    compute_phase,
    barrier_phase,
    mix_workloads,
)
from .export import PpCall, SessionScript, export_pp_sequences
from .suite import table2_workloads, workload_by_name, WORKLOAD_NAMES

__all__ = [
    "PpCall",
    "SessionScript",
    "export_pp_sequences",
    "Phase",
    "PhaseKind",
    "PpSpec",
    "ProcessSpec",
    "Workload",
    "compute_phase",
    "barrier_phase",
    "mix_workloads",
    "table2_workloads",
    "workload_by_name",
    "WORKLOAD_NAMES",
]
