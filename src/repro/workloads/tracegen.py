"""Synthetic address-trace generators.

These stand in for running the real applications under Intel PIN: they
produce load/store address streams with the *structural* locality of each
modelled code — streaming sweeps, blocked reuse, stencil neighbourhoods,
pair-interaction slabs — so the profiler of :mod:`repro.profiler` exercises
the paper's §2.4 pipeline end to end (fixed windows → footprint/WSS/reuse →
period detection → input-scaling regression).

The water_nsquared and ocean_cp generators are the subjects of figure 12;
their measured working sets grow sublinearly with input size because a
fixed-size sampling window can only re-touch so much data, which is exactly
the "logarithmic curve" the paper observes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ProfilerError
from ..mem.address import AddressSpace
from ..mem.trace import MemoryTrace, concat_traces

__all__ = [
    "streaming_trace",
    "blocked_trace",
    "water_pp1_trace",
    "water_pp2_trace",
    "ocean_pp1_trace",
    "ocean_pp2_trace",
    "raytrace_trace",
    "volrend_trace",
    "phased_trace",
]

_LINE = 64
_DEFAULT_ACCESSES = 2_000_000


def _interleave(*streams: np.ndarray) -> np.ndarray:
    """Round-robin-interleave equal-length address streams."""
    stacked = np.stack(streams, axis=1)
    return stacked.reshape(-1)


# ----------------------------------------------------------------------
# generic building blocks (tests, BLAS demos)
# ----------------------------------------------------------------------
def streaming_trace(
    array_bytes: int,
    n_accesses: int = _DEFAULT_ACCESSES,
    stride: int = 8,
    label: str = "stream",
) -> MemoryTrace:
    """Pure streaming: one sequential sweep pattern, no temporal reuse.

    Models BLAS-1: each line is touched ``64/stride`` times in quick
    succession (spatial locality) and never again.
    """
    space = AddressSpace()
    region = space.alloc("stream", max(array_bytes, stride))
    offsets = (np.arange(n_accesses, dtype=np.int64) * stride)
    return MemoryTrace(region.addr(offsets), label=label)


def blocked_trace(
    block_bytes: int,
    n_accesses: int = _DEFAULT_ACCESSES,
    reuse_passes: int = 8,
    label: str = "blocked",
) -> MemoryTrace:
    """Loop-blocked reuse: sweep one block ``reuse_passes`` times, move on.

    Models BLAS-3: within a window the hot set is one block, touched many
    times (high reuse ratio).
    """
    if reuse_passes < 1:
        raise ProfilerError("reuse_passes must be >= 1")
    space = AddressSpace()
    region = space.alloc("blocked", block_bytes * 64)
    per_pass = block_bytes // 8
    sweep = np.arange(per_pass, dtype=np.int64) * 8
    chunks = []
    produced = 0
    block = 0
    while produced < n_accesses:
        base = block * block_bytes
        for _ in range(reuse_passes):
            chunks.append(base + sweep)
        produced += per_pass * reuse_passes
        block += 1
    offsets = np.concatenate(chunks)[:n_accesses]
    return MemoryTrace(region.addr(offsets), label=label)


# ----------------------------------------------------------------------
# water_nsquared (figure 12: Wnsq PP1 / PP2)
# ----------------------------------------------------------------------
_MOL_BYTES = 192  # one molecule record: position/velocity/force = 3 lines


def water_pp1_trace(
    n_molecules: int,
    n_accesses: int = _DEFAULT_ACCESSES,
    jmp_layout: Optional[dict] = None,
) -> MemoryTrace:
    """The O(n²) inter-molecular pair sweep (largest progress period).

    Molecules are spatially sorted, so the cutoff-radius partners of row
    ``i`` occupy an index *slab* of width ``w ∝ n^(2/3)`` (a 3-D box's
    cross-section grows with the two-thirds power of its volume).  The
    sweep touches ``mol[i]`` and every ``mol[j]`` in the slab; consecutive
    rows overlap almost entirely, so the slab is the window's hot set.
    """
    if n_molecules < 64:
        raise ProfilerError("need at least 64 molecules")
    space = AddressSpace()
    mol = space.alloc("molecules", n_molecules * _MOL_BYTES)
    # Cutoff-radius partners occupy an index slab that grows sublinearly
    # with the molecule count (the box side grows as the cube root of the
    # volume; the spatially-sorted slab cross-section a touch faster).
    slab = max(64, int(90 * n_molecules**0.55))
    slab = min(slab, n_molecules)
    # Per row: interleave the row molecule's record with its slab partners.
    pairs_per_row = slab
    rows = max(1, n_accesses // (4 * pairs_per_row))
    chunks = []
    j_base = np.arange(slab, dtype=np.int64)
    for i in range(rows):
        j_idx = (i + j_base) % n_molecules
        j_addrs = mol.element_addr(j_idx, _MOL_BYTES)
        i_addrs = mol.element_addr(np.full(slab, i, dtype=np.int64), _MOL_BYTES)
        # position read, velocity read, force write per partner record
        chunks.append(_interleave(j_addrs, j_addrs + 64, j_addrs + 128, i_addrs))
    addrs = np.concatenate(chunks)[:n_accesses]
    return MemoryTrace(
        addrs,
        label=f"wnsq.pp1[{n_molecules}]",
        jmp_addresses=_jmps_for(addrs.size, jmp_layout),
    )


def water_pp2_trace(
    n_molecules: int,
    n_accesses: int = _DEFAULT_ACCESSES,
    jmp_layout: Optional[dict] = None,
) -> MemoryTrace:
    """The predictor/corrector pass (second-largest progress period).

    Sweeps the molecule derivative arrays (≈288 B per molecule) in blocks,
    making three passes over each block — the Gear predictor touches each
    derivative order separately.  The hot set saturates once a block of
    three passes no longer fits a sampling window.
    """
    space = AddressSpace()
    deriv = space.alloc("derivatives", n_molecules * 288)
    block_mols = 16384
    passes = 8  # one pass per derivative order kept by the Gear predictor
    per_block = block_mols * passes
    chunks = []
    produced = 0
    b = 0
    sweep = np.arange(block_mols, dtype=np.int64)
    while produced < n_accesses:
        base = (b * block_mols) % max(1, n_molecules)
        idx = base + sweep
        for _ in range(passes):
            chunks.append(deriv.element_addr(idx, 288))
        produced += per_block
        b += 1
    addrs = np.concatenate(chunks)[:n_accesses]
    return MemoryTrace(
        addrs,
        label=f"wnsq.pp2[{n_molecules}]",
        jmp_addresses=_jmps_for(addrs.size, jmp_layout),
    )


# ----------------------------------------------------------------------
# ocean_cp (figure 12: Ocp PP1 / PP2)
# ----------------------------------------------------------------------
def ocean_pp1_trace(
    dim: int,
    n_accesses: int = _DEFAULT_ACCESSES,
    jmp_layout: Optional[dict] = None,
) -> MemoryTrace:
    """The jacobcalc stencil phase: 5-point sweeps over the full grid.

    At the 1x input (514²) the whole grid is ~2.1 MB and is re-swept within
    a window; at larger inputs a window covers a shrinking fraction of the
    grid, so the measured working set saturates.
    """
    if dim < 16:
        raise ProfilerError("grid dimension too small")
    space = AddressSpace()
    grid = space.alloc("grid", dim * dim * 8)
    row = np.arange(dim, dtype=np.int64)
    chunks = []
    produced = 0
    i = 1
    while produced < n_accesses:
        r = i % (dim - 2) + 1
        center = (r * dim + row) * 8
        chunks.append(
            _interleave(
                grid.addr(center),
                grid.addr(center - dim * 8),  # north
                grid.addr(center + dim * 8),  # south
                grid.addr(center - 8),  # west
                grid.addr(center + 8),  # east
            )
        )
        produced += 5 * dim
        i += 1
    addrs = np.concatenate(chunks)[:n_accesses]
    return MemoryTrace(
        addrs,
        label=f"ocean.pp1[{dim}]",
        jmp_addresses=_jmps_for(addrs.size, jmp_layout),
    )


def ocean_pp2_trace(
    dim: int,
    n_accesses: int = _DEFAULT_ACCESSES,
    jmp_layout: Optional[dict] = None,
) -> MemoryTrace:
    """The laplacalc phase: red-black half-sweep over a smaller field.

    Touches every other point (two passes: red then black, which re-touch
    their four neighbours), over a field ~36 % the area of the main grid —
    Table 2's 0.76 MB at the 1x input.
    """
    space = AddressSpace()
    side = max(16, int(dim * 0.6))
    field = space.alloc("field", side * side * 8)
    cols = np.arange(0, side - 2, 2, dtype=np.int64)
    chunks = []
    produced = 0
    i = 1
    while produced < n_accesses:
        r = i % (side - 2) + 1
        parity = (i // (side - 2)) % 2
        center = (r * side + cols + parity) * 8
        chunks.append(
            _interleave(
                field.addr(center),
                field.addr(center - side * 8),
                field.addr(center + side * 8),
                field.addr(center - 8),
                field.addr(center + 8),
            )
        )
        produced += 5 * cols.size
        i += 1
    addrs = np.concatenate(chunks)[:n_accesses]
    return MemoryTrace(
        addrs,
        label=f"ocean.pp2[{dim}]",
        jmp_addresses=_jmps_for(addrs.size, jmp_layout),
    )


# ----------------------------------------------------------------------
# raytrace / volrend (tree-traversal renderers)
# ----------------------------------------------------------------------
def raytrace_trace(
    n_scene_nodes: int = 60_000,
    n_accesses: int = _DEFAULT_ACCESSES,
    tree_depth: int = 14,
    jmp_layout: Optional[dict] = None,
    seed: int = 12345,
) -> MemoryTrace:
    """BVH traversal: every ray walks root→leaf through the scene tree.

    The top levels of the tree are shared by all rays (extremely hot); the
    leaves spread across the whole scene.  This gives the high-reuse,
    large-working-set signature of Table 2's raytrace periods.
    """
    if n_scene_nodes < (1 << 8):
        raise ProfilerError("scene too small")
    space = AddressSpace()
    node_bytes = 96  # BVH node: bounds + children
    nodes = space.alloc("bvh", n_scene_nodes * node_bytes)
    tris = space.alloc("triangles", n_scene_nodes * 2 * 64)
    rng = np.random.default_rng(seed)
    rays = max(1, n_accesses // (tree_depth + 2))
    # Each ray visits node 1, then a child path: index path doubles with a
    # random left/right choice — coherent rays (consecutive) share prefixes.
    chunks = []
    for start in range(0, rays, 4096):
        batch = min(4096, rays - start)
        idx = np.ones(batch, dtype=np.int64)
        visit = [nodes.element_addr(idx, node_bytes)]
        # rays in a batch are spatially coherent: same coarse direction
        coarse = rng.integers(0, 2, size=tree_depth // 2)
        for d in range(tree_depth):
            if d < tree_depth // 2:
                bit = np.full(batch, coarse[d], dtype=np.int64)
            else:
                bit = rng.integers(0, 2, size=batch).astype(np.int64)
            idx = idx * 2 + bit
            visit.append(nodes.element_addr(idx % n_scene_nodes, node_bytes))
        # leaf: touch a couple of triangles
        visit.append(tris.element_addr(idx % (n_scene_nodes * 2), 64))
        visit.append(tris.element_addr((idx + 1) % (n_scene_nodes * 2), 64))
        chunks.append(np.stack(visit, axis=1).reshape(-1))
    addrs = np.concatenate(chunks)[:n_accesses]
    return MemoryTrace(
        addrs,
        label=f"raytrace[{n_scene_nodes}]",
        jmp_addresses=_jmps_for(addrs.size, jmp_layout),
    )


def volrend_trace(
    volume_side: int = 128,
    n_accesses: int = _DEFAULT_ACCESSES,
    tile: int = 16,
    jmp_layout: Optional[dict] = None,
) -> MemoryTrace:
    """Tile-ordered ray casting into a voxel volume.

    Rays of one image tile pierce a compact sub-volume (high locality
    within the tile, the per-thread private hot set of Table 2's volrend);
    successive tiles move to fresh sub-volumes.
    """
    if volume_side < 2 * tile:
        raise ProfilerError("volume too small for the tile size")
    space = AddressSpace()
    voxels = space.alloc("volume", volume_side**3)  # 1 byte per voxel
    image = space.alloc("image", volume_side * volume_side * 4)
    tiles_per_side = volume_side // tile
    chunks = []
    produced = 0
    t = 0
    depth = volume_side
    while produced < n_accesses:
        ty, tx = divmod(t % (tiles_per_side**2), tiles_per_side)
        # every ray of the tile walks the depth axis through its column
        for py in range(tile):
            y = ty * tile + py
            x0 = tx * tile
            cols = (np.arange(tile, dtype=np.int64) + x0)
            for z in range(0, depth, 2):  # early-ray termination: step 2
                off = (z * volume_side + y) * volume_side + cols
                chunks.append(voxels.addr(off))
            chunks.append(image.addr((y * volume_side + cols) * 4))
        produced += tile * (depth // 2 + 1) * tile
        t += 1
    addrs = np.concatenate(chunks)[:n_accesses]
    return MemoryTrace(
        addrs,
        label=f"volrend[{volume_side}]",
        jmp_addresses=_jmps_for(addrs.size, jmp_layout),
    )


# ----------------------------------------------------------------------
# multi-phase traces for period-detection tests (§2.4 pipeline)
# ----------------------------------------------------------------------
def phased_trace(
    phases: list[tuple[str, int, int]],
    accesses_per_phase: int = 600_000,
) -> MemoryTrace:
    """A trace alternating between distinct resource behaviours.

    Args:
        phases: list of (kind, size_bytes, reuse_passes) where kind is
            ``"stream"`` or ``"blocked"``; each entry contributes one
            execution phase the detector should find.
    """
    slices = []
    for k, (kind, size, passes) in enumerate(phases):
        if kind == "stream":
            t = streaming_trace(size, accesses_per_phase, label=f"p{k}.stream")
        elif kind == "blocked":
            t = blocked_trace(size, accesses_per_phase, passes, label=f"p{k}.blocked")
        else:
            raise ProfilerError(f"unknown phase kind {kind!r}")
        # re-base each phase into a distinct region of the address space
        t = MemoryTrace(
            t.addresses + k * (1 << 40),
            instructions_per_access=t.instructions_per_access,
            label=t.label,
        )
        slices.append(t)
    return concat_traces(slices, label="phased")


def _jmps_for(n_accesses: int, layout: Optional[dict]) -> Optional[np.ndarray]:
    """JMP samples for a trace: the inner-loop backedge dominates."""
    if layout is None:
        return None
    stride = layout.get("stride", 256)
    inner = layout["inner_backedge"]
    outer = layout.get("outer_backedge", inner)
    n = n_accesses // stride
    jmps = np.full(n, inner, dtype=np.int64)
    ratio = layout.get("outer_every", 64)
    jmps[::ratio] = outer
    return jmps
