"""raytrace: parallel ray tracer over a shared scene graph.

Table 2: 48 processes × 4 threads, periods of 5.1 / 5.2 MB, both *high*
reuse — rays repeatedly traverse the same BVH/scene structures.  This is
the paper's best case: "when scheduling Raytrace with the strict policy, we
attained a maximum speedup of 1.88x and 47% decrease in overall energy
consumed".  The demand is large enough that only three instances' scenes
fit in the 15 MB LLC at once, so the default scheduler's 192 runnable
threads thrash it severely.
"""

from __future__ import annotations

from ...core.progress_period import ReuseLevel
from ..base import ProcessSpec, Workload
from .common import splash_phase, timestep_program

__all__ = ["raytrace_process", "raytrace_workload"]

MB = 1_000_000


def raytrace_process(frames: int = 2) -> ProcessSpec:
    """One raytrace process (4 threads): trace + shade periods per frame."""
    step = [
        splash_phase(
            "trace",
            instructions=16_000_000,
            wss_bytes=int(5.1 * MB),
            reuse=0.85,
            reuse_level=ReuseLevel.HIGH,
            flops_per_instr=0.65,
            mem_refs_per_instr=0.45,
            llc_refs_per_memref=0.042,
        ),
        splash_phase(
            "shade",
            instructions=12_000_000,
            wss_bytes=int(5.2 * MB),
            reuse=0.85,
            reuse_level=ReuseLevel.HIGH,
            flops_per_instr=0.70,
            mem_refs_per_instr=0.45,
            llc_refs_per_memref=0.042,
        ),
    ]
    return ProcessSpec(
        name="raytrace",
        program=timestep_program(step, frames),
        n_threads=4,
    )


def raytrace_workload(n_processes: int = 48, frames: int = 2) -> Workload:
    """Table 2 row: 48 processes × 4 threads."""
    return Workload(
        name="Raytrace",
        processes=[raytrace_process(frames) for _ in range(n_processes)],
        description="ray tracer; PPs 5.1/5.2 MB, high reuse",
    )
