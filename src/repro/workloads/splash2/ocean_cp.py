"""ocean_cp: contiguous-partition ocean current simulation.

Table 2: 48 processes × 2 threads, periods of 2.1 / 0.76 / 1.5 / 0.59 MB
with high / med / high / med reuse.  The paper's §6 notes the structure we
model: the ``slave2`` function "contains three progress periods because the
function has multiple phases", while ``relax`` (the red-black SOR solver)
"has a consistent behavior throughout its execution, therefore allowing a
single progress period to contain all of its instructions".
"""

from __future__ import annotations

from ...core.progress_period import ReuseLevel
from ..base import ProcessSpec, Workload
from .common import splash_phase, timestep_program

__all__ = ["ocean_cp_process", "ocean_cp_workload"]

MB = 1_000_000


def ocean_cp_process(timesteps: int = 2) -> ProcessSpec:
    """One ocean_cp process (2 threads): slave2's three periods + relax."""
    step = [
        splash_phase(
            "slave2.jacobcalc",
            instructions=11_000_000,
            wss_bytes=int(2.1 * MB),
            reuse=0.88,
            reuse_level=ReuseLevel.HIGH,
            flops_per_instr=0.60,
            llc_refs_per_memref=0.15,
        ),
        splash_phase(
            "slave2.laplacalc",
            instructions=6_000_000,
            wss_bytes=int(0.76 * MB),
            reuse=0.55,
            reuse_level=ReuseLevel.MEDIUM,
            flops_per_instr=0.55,
            llc_refs_per_memref=0.15,
        ),
        splash_phase(
            "slave2.tidal",
            instructions=9_000_000,
            wss_bytes=int(1.5 * MB),
            reuse=0.88,
            reuse_level=ReuseLevel.HIGH,
            flops_per_instr=0.60,
            llc_refs_per_memref=0.15,
        ),
        splash_phase(
            "relax",
            instructions=8_000_000,
            wss_bytes=int(0.59 * MB),
            reuse=0.55,
            reuse_level=ReuseLevel.MEDIUM,
            flops_per_instr=0.58,
            llc_refs_per_memref=0.15,
        ),
    ]
    return ProcessSpec(
        name="ocean_cp",
        program=timestep_program(step, timesteps),
        n_threads=2,
    )


def ocean_cp_workload(n_processes: int = 48, timesteps: int = 2) -> Workload:
    """Table 2 row: 48 processes × 2 threads."""
    return Workload(
        name="Ocean_cp",
        processes=[ocean_cp_process(timesteps) for _ in range(n_processes)],
        description="ocean currents; PPs 2.1/0.76/1.5/0.59 MB, high/med reuse",
    )
