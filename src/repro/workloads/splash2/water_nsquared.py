"""water_nsquared: O(n²) molecular dynamics, the paper's headline workload.

Table 2: 12 processes × 2 threads, progress periods of 3.6 / 3.6 / 3.7 MB,
all *high* reuse.  The three periods model the per-timestep stages
(predict + intra-molecular forces, the O(n²) inter-molecular sweep, and the
correction pass), separated by the application's global barriers.

This module also provides the input-scaling knobs used by figures 12 and
13: the measured working set grows sublinearly with molecule count (the
paper observes "the shape of a logarithmic curve"), and the locality of the
pair sweep degrades as the molecule array outgrows the private caches.
"""

from __future__ import annotations

import math

from ...core.progress_period import ReuseLevel
from ..base import Phase, PpSpec, ProcessSpec, Workload
from .common import splash_phase, timestep_program

__all__ = [
    "N_MOLECULES_1X",
    "wss_of_molecules",
    "largest_pp_phase",
    "water_nsquared_process",
    "water_nsquared_workload",
    "interference_workload",
]

MB = 1_000_000

#: the SPLASH-2 default input the paper calls "1x"
N_MOLECULES_1X = 8000

#: figure 12 input scale → molecule count ("slightly adjusted to fit within
#: the runtime restrictions"): 1x, 2x, 4x, 8x
INPUT_SCALES = {1: 8000, 2: 15625, 4: 32768, 8: 64000}


def wss_of_molecules(n_molecules: int) -> int:
    """Working set of the largest progress period for ``n`` molecules.

    Calibrated to the paper's figure 13 anchor points: the LLC "can hold
    all data from 6 processes, but not twelve" at 8000 molecules →
    ≈ 2.5 MB per instance.  Growth is sublinear (each molecule's record is
    fixed-size, but the *hot* set within a sampling window saturates as the
    pair sweep reuses a shrinking fraction of the array), which is the
    logarithmic shape figure 12 reports.
    """
    if n_molecules <= 0:
        raise ValueError("molecule count must be positive")
    # 2.5 MB at 8000 molecules, log-shaped growth.
    return int(2.5 * MB * math.log(1 + n_molecules / 1500.0) / math.log(1 + 8000 / 1500.0))


def _locality_of_molecules(n_molecules: int) -> tuple[float, float, float]:
    """(llc_refs_per_memref, reuse, memory_overlap) for an input size.

    Bigger inputs stream more traffic past the private caches and re-touch
    a smaller fraction of it, while the longer unit-stride sweeps prefetch
    better (higher memory-level parallelism).  The 32 768-molecule point is
    what makes figure 13's largest input memory-bandwidth-bound at six
    concurrent instances: each instance streams enough DRAM traffic that
    six of them saturate the bus.
    """
    x = min(1.0, math.log(1 + n_molecules / 500.0) / math.log(1 + 64000 / 500.0))
    llc_refs = 0.08 + 0.22 * x
    # LLC-level temporal locality collapses once the molecule array is far
    # larger than any realistic share (cubic fall-off keeps the default
    # input's reuse high while the 8x input is nearly pure streaming).
    reuse = 0.94 - 0.70 * x**3
    overlap = 0.60 + 0.26 * x
    return llc_refs, reuse, overlap


def largest_pp_phase(n_molecules: int, instructions: int = 26_000_000) -> Phase:
    """The largest progress period of water_nsquared at a given input.

    This is the subject of figure 13 ("the longest progress period from
    water_nsquared ... run under varying input sizes and number of total
    concurrent instances").
    """
    llc_refs, reuse, overlap = _locality_of_molecules(n_molecules)
    wss = wss_of_molecules(n_molecules)
    return Phase(
        name=f"interf[{n_molecules}]",
        instructions=instructions,
        flops_per_instr=0.80,
        mem_refs_per_instr=0.40,
        llc_refs_per_memref=llc_refs,
        wss_bytes=wss,
        reuse=reuse,
        pp=PpSpec(demand_bytes=wss, reuse=ReuseLevel.HIGH),
        shared=True,
        memory_overlap=overlap,
    )


def water_nsquared_process(
    timesteps: int = 2, input_scale: float = 1.0
) -> ProcessSpec:
    """One water_nsquared process (2 threads) with Table 2's three periods.

    ``input_scale`` scales the molecule count relative to the default 8000
    (Table 2's values are at 1x): the working sets grow with
    :func:`wss_of_molecules`' sublinear curve, and the O(n²) pair sweep's
    instruction count grows a bit faster than linearly.  A well-behaved
    application declares the *scaled* demand just in time — that is the
    input-adaptivity the paper contrasts against static-profile schedulers.
    """
    if input_scale <= 0:
        raise ValueError("input_scale must be positive")
    wss_factor = wss_of_molecules(int(N_MOLECULES_1X * input_scale)) / wss_of_molecules(
        N_MOLECULES_1X
    )
    instr_factor = input_scale**1.3  # O(n^2) sweep amortized by the cutoff
    step = [
        splash_phase(
            "predic+intraf",
            instructions=int(20_000_000 * instr_factor),
            wss_bytes=int(3.6 * MB * wss_factor),
            reuse=0.92,
            reuse_level=ReuseLevel.HIGH,
            flops_per_instr=0.80,
            llc_refs_per_memref=0.11,
        ),
        splash_phase(
            "interf",
            instructions=int(26_000_000 * instr_factor),
            wss_bytes=int(3.6 * MB * wss_factor),
            reuse=0.92,
            reuse_level=ReuseLevel.HIGH,
            flops_per_instr=0.85,
            llc_refs_per_memref=0.11,
        ),
        splash_phase(
            "correc+kineti",
            instructions=int(18_000_000 * instr_factor),
            wss_bytes=int(3.7 * MB * wss_factor),
            reuse=0.90,
            reuse_level=ReuseLevel.HIGH,
            flops_per_instr=0.75,
            llc_refs_per_memref=0.11,
        ),
    ]
    return ProcessSpec(
        name="water_nsq",
        program=timestep_program(step, timesteps),
        n_threads=2,
    )


def water_nsquared_workload(
    n_processes: int = 12, timesteps: int = 2, input_scale: float = 1.0
) -> Workload:
    """Table 2 row: 12 processes × 2 threads (optionally input-scaled)."""
    return Workload(
        name="Water_nsq",
        processes=[
            water_nsquared_process(timesteps, input_scale)
            for _ in range(n_processes)
        ],
        description="O(n^2) molecular dynamics; PPs 3.6/3.6/3.7 MB, high reuse",
    )


def interference_workload(n_molecules: int, n_instances: int) -> Workload:
    """Figure 13 workload: N single-threaded instances of the largest PP."""
    spec = ProcessSpec(
        name=f"wnsq_pp[{n_molecules}]",
        program=[largest_pp_phase(n_molecules)],
        n_threads=1,
    )
    return Workload(
        name=f"wnsq-interference-{n_molecules}x{n_instances}",
        processes=[spec] * n_instances,
        description="figure 13 LLC-interference microbenchmark",
    )
