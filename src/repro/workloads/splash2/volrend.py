"""volrend: volume renderer (ray casting into a voxel octree).

Table 2: 48 processes × 4 threads, periods of 1.8 / 1.7 MB, both *high*
reuse.  Unlike raytrace, whose threads traverse one shared scene, volrend's
threads ray-cast *independent image tiles*: each thread's hot set (its tile
rays, per-thread opacity buffers and the octree sub-volume they pierce) is
private, so the Table 2 demand is per *thread*.  That makes admission
costly for the strict policy (few threads fit) and is why the paper finds
the compromise policy's extra concurrency winning volrend: "the compromise
policy attains a 21% speedup when compared to the strict configuration".
"""

from __future__ import annotations

from ...core.progress_period import ReuseLevel
from ..base import ProcessSpec, Workload
from .common import splash_phase, timestep_program

__all__ = ["volrend_process", "volrend_workload"]

MB = 1_000_000


def volrend_process(frames: int = 2) -> ProcessSpec:
    """One volrend process (4 threads): render + composite periods."""
    step = [
        splash_phase(
            "render",
            instructions=9_000_000,
            wss_bytes=int(1.8 * MB),
            reuse=0.90,
            reuse_level=ReuseLevel.HIGH,
            flops_per_instr=0.55,
            mem_refs_per_instr=0.42,
            llc_refs_per_memref=0.09,
            shared=False,  # per-thread tiles: demand is per thread
        ),
        splash_phase(
            "composite",
            instructions=7_000_000,
            wss_bytes=int(1.7 * MB),
            reuse=0.88,
            reuse_level=ReuseLevel.HIGH,
            flops_per_instr=0.50,
            mem_refs_per_instr=0.42,
            llc_refs_per_memref=0.09,
            shared=False,
        ),
    ]
    return ProcessSpec(
        name="volrend",
        program=timestep_program(step, frames),
        n_threads=4,
    )


def volrend_workload(n_processes: int = 48, frames: int = 2) -> Workload:
    """Table 2 row: 48 processes × 4 threads."""
    return Workload(
        name="Volrend",
        processes=[volrend_process(frames) for _ in range(n_processes)],
        description="volume renderer; PPs 1.8/1.7 MB, high reuse",
    )
