"""water_spatial: spatially-decomposed molecular dynamics.

Table 2: 12 processes × 2 threads, periods of 1.6 / 1.3 / 1.3 / 1.6 MB, all
*low* reuse — the cell-list decomposition visits each molecule's cell once
per stage, so there is little temporal locality to protect.  This is one of
the two workloads the paper reports RDA *hurting* (≈6 % slowdown, ≈4 % more
energy): constraining concurrency buys nothing when the data is not reused.
"""

from __future__ import annotations

from ...core.progress_period import ReuseLevel
from ..base import ProcessSpec, Workload
from .common import splash_phase, timestep_program

__all__ = ["water_spatial_process", "water_spatial_workload"]

MB = 1_000_000


def water_spatial_process(timesteps: int = 2) -> ProcessSpec:
    """One water_spatial process (2 threads) with Table 2's four periods."""
    step = [
        splash_phase(
            "predic",
            instructions=16_000_000,
            wss_bytes=int(1.6 * MB),
            reuse=0.10,
            reuse_level=ReuseLevel.LOW,
            flops_per_instr=0.70,
            llc_refs_per_memref=0.13,
        ),
        splash_phase(
            "intraf",
            instructions=14_000_000,
            wss_bytes=int(1.3 * MB),
            reuse=0.10,
            reuse_level=ReuseLevel.LOW,
            flops_per_instr=0.75,
            llc_refs_per_memref=0.13,
        ),
        splash_phase(
            "interf-cells",
            instructions=18_000_000,
            wss_bytes=int(1.3 * MB),
            reuse=0.12,
            reuse_level=ReuseLevel.LOW,
            flops_per_instr=0.80,
            llc_refs_per_memref=0.13,
        ),
        splash_phase(
            "correc",
            instructions=14_000_000,
            wss_bytes=int(1.6 * MB),
            reuse=0.10,
            reuse_level=ReuseLevel.LOW,
            flops_per_instr=0.70,
            llc_refs_per_memref=0.13,
        ),
    ]
    return ProcessSpec(
        name="water_sp",
        program=timestep_program(step, timesteps),
        n_threads=2,
    )


def water_spatial_workload(n_processes: int = 12, timesteps: int = 2) -> Workload:
    """Table 2 row: 12 processes × 2 threads."""
    return Workload(
        name="Water_sp",
        processes=[water_spatial_process(timesteps) for _ in range(n_processes)],
        description="cell-list molecular dynamics; PPs 1.6/1.3/1.3/1.6 MB, low reuse",
    )
