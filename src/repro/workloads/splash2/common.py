"""Shared construction helpers for the SPLASH-2 application models."""

from __future__ import annotations

from typing import Sequence

from ...core.progress_period import ReuseLevel
from ..base import Phase, PpSpec, barrier_phase

__all__ = ["splash_phase", "timestep_program"]


def splash_phase(
    name: str,
    *,
    instructions: int,
    wss_bytes: int,
    reuse: float,
    reuse_level: ReuseLevel,
    flops_per_instr: float,
    mem_refs_per_instr: float = 0.40,
    llc_refs_per_memref: float = 0.12,
    declare_pp: bool = True,
    shared: bool = True,
) -> Phase:
    """One SPLASH progress-period phase.

    ``shared=True`` is the usual SPLASH-2 model: the threads of one process
    cooperate on a single data set (molecules, grids, the scene), so the
    working set occupies the LLC once per process, not once per thread.
    Pass ``shared=False`` for stages where each thread works on private
    data (e.g. volrend's independent image tiles).
    """
    return Phase(
        name=name,
        instructions=instructions,
        flops_per_instr=flops_per_instr,
        mem_refs_per_instr=mem_refs_per_instr,
        llc_refs_per_memref=llc_refs_per_memref,
        wss_bytes=wss_bytes,
        reuse=reuse,
        pp=PpSpec(demand_bytes=wss_bytes, reuse=reuse_level) if declare_pp else None,
        shared=shared,
    )


def timestep_program(
    step_phases: Sequence[Phase], timesteps: int, barrier_between: bool = True
) -> list[Phase]:
    """Repeat a timestep's phases, with barriers separating the phases.

    Barriers model the SPLASH-2 global synchronization between computation
    stages; per §3.4 they sit *outside* the progress periods, so the
    durations containing synchronization run under the default OS policy.
    """
    program: list[Phase] = []
    for step in range(timesteps):
        for i, phase in enumerate(step_phases):
            program.append(phase)
            if barrier_between:
                program.append(barrier_phase(f"{phase.name}.b{step}.{i}"))
    return program
