"""Phase models of the five SPLASH-2 applications of Table 2.

Each application is "broken into multiple progress periods, with an input
size that restricts the working set sizes of all progress periods to
individually fit within the last level cache".  The per-period working sets
and reuse levels are the paper's own (Table 2); phase structure, barrier
placement and instruction mixes follow the published SPLASH-2
characterizations (Woo et al. 1995).
"""

from .water_nsquared import water_nsquared_process, water_nsquared_workload, wss_of_molecules
from .water_spatial import water_spatial_process, water_spatial_workload
from .ocean_cp import ocean_cp_process, ocean_cp_workload
from .raytrace import raytrace_process, raytrace_workload
from .volrend import volrend_process, volrend_workload

__all__ = [
    "water_nsquared_process",
    "water_nsquared_workload",
    "wss_of_molecules",
    "water_spatial_process",
    "water_spatial_workload",
    "ocean_cp_process",
    "ocean_cp_workload",
    "raytrace_process",
    "raytrace_workload",
    "volrend_process",
    "volrend_workload",
]
