"""Scheduling policies (paper §3.3).

A policy dictates the limits of each hardware resource.  The predicate
(Algorithm 1) computes ``outcome = remaining − demand`` and asks the policy
whether that outcome is acceptable:

* :class:`StrictPolicy` (RDA:Strict) — denies any process whose additional
  demand would put the resource above maximum capacity (``outcome ≥ 0``).
* :class:`CompromisePolicy` (RDA:Compromise) — allows usage up to ``x`` times
  capacity where ``x`` is the oversubscription factor (the paper uses 2).
* :class:`AlwaysAdmitPolicy` — degenerate policy equivalent to the default
  OS scheduler (useful as an in-framework baseline and for tests).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import ConfigError
from .resource_monitor import ResourceState

__all__ = [
    "SchedulingPolicy",
    "StrictPolicy",
    "CompromisePolicy",
    "AlwaysAdmitPolicy",
]


class SchedulingPolicy(ABC):
    """Decides whether a progress period may run given the resource state."""

    #: short name used in reports ("Linux Default", "RDA: Strict", ...)
    name: str = "policy"

    @abstractmethod
    def allows(self, outcome_bytes: float, resource: ResourceState) -> bool:
        """Apply the policy to ``outcome = remaining − demand`` (Algorithm 1).

        Args:
            outcome_bytes: space that would remain free (possibly negative)
                if the candidate period were admitted.
            resource: the targeted resource's capacity and current usage.
        """

    def demand_bound(self, capacity_bytes: int) -> float:
        """Upper bound the policy places on aggregate admitted demand.

        The runtime sanitizer asserts that the resource monitor's usage
        never exceeds this bound (excluding starvation-guard forced
        admissions).  Policies without a hard ceiling return ``inf``.
        """
        return math.inf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass(frozen=True)
class StrictPolicy(SchedulingPolicy):
    """RDA:Strict — maximize hardware resource efficiency.

    Denies any process from running if the additional resource demand would
    put a hardware resource above maximum capacity.  Intended to result in
    the least energy consumed, possibly at a performance cost.
    """

    name: str = "RDA: Strict"

    def allows(self, outcome_bytes: float, resource: ResourceState) -> bool:
        return outcome_bytes >= 0

    def demand_bound(self, capacity_bytes: int) -> float:
        return float(capacity_bytes)


@dataclass(frozen=True)
class CompromisePolicy(SchedulingPolicy):
    """RDA:Compromise — balance efficiency against concurrency.

    Allows a process to run as long as adding its demand keeps usage within
    ``oversubscription`` times the resource's capacity.  The paper configures
    the factor to 2, "shown to be effective in attaining the best balance
    between energy efficiency and performance".
    """

    oversubscription: float = 2.0
    name: str = "RDA: Compromise"

    def __post_init__(self) -> None:
        if self.oversubscription < 1.0:
            raise ConfigError(
                f"oversubscription factor must be >= 1, got {self.oversubscription}"
            )

    def allows(self, outcome_bytes: float, resource: ResourceState) -> bool:
        # usage + demand <= x * capacity  <=>  outcome >= -(x-1) * capacity
        slack = (self.oversubscription - 1.0) * resource.capacity_bytes
        return outcome_bytes >= -slack

    def demand_bound(self, capacity_bytes: int) -> float:
        return self.oversubscription * capacity_bytes


@dataclass(frozen=True)
class AlwaysAdmitPolicy(SchedulingPolicy):
    """Admit everything — equivalent to scheduling on the default OS policy."""

    name: str = "Always Admit"

    def allows(self, outcome_bytes: float, resource: ResourceState) -> bool:
        return True
