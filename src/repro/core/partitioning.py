"""Cache-partitioning scheduling extension (the paper's §6 future work).

Combines two pieces:

* hardware: a :class:`repro.mem.partition.PartitionedLlcModel` that confines
  streaming working sets to a small partition, and
* scheduling: :class:`PartitioningRdaScheduler`, which admits only the
  *protected* (reusable) periods against the main partition's capacity and
  lets streaming periods run immediately — gating a stream buys nothing,
  because "it would fetch most data from main memory regardless".

Use :func:`partitioned_kernel` to assemble a kernel with matching hardware
and scheduler settings.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import MachineConfig, default_machine_config
from ..mem.partition import PartitionedLlcModel
from ..sim.kernel import AdmissionDecision, Kernel
from ..sim.machine import Machine
from ..sim.process import Thread
from .policy import SchedulingPolicy
from .progress_period import PeriodRequest, ReuseLevel
from .rda import RdaScheduler

__all__ = ["PartitioningRdaScheduler", "partitioned_kernel"]


class PartitioningRdaScheduler(RdaScheduler):
    """RDA admission over the main partition; streams bypass to the pen.

    A period is *streaming* when it declares LOW reuse or a demand larger
    than the whole cache.  Streaming periods are never charged to the
    managed resource and never waitlisted — the hardware partition already
    isolates them.
    """

    def __init__(
        self,
        policy: Optional[SchedulingPolicy] = None,
        config: Optional[MachineConfig] = None,
        streaming_partition_bytes: Optional[int] = None,
        starvation_guard: bool = True,
    ) -> None:
        config = config or default_machine_config()
        if streaming_partition_bytes is None:
            streaming_partition_bytes = config.llc_capacity // 8
        self.streaming_partition_bytes = int(streaming_partition_bytes)
        super().__init__(
            policy=policy, config=config, starvation_guard=starvation_guard
        )
        # Re-register the managed capacity as the *main* partition only.
        self.llc.capacity_bytes = config.llc_capacity - self.streaming_partition_bytes
        #: streaming periods that bypassed admission, for reporting
        self.bypassed = 0

    def is_streaming(self, request: PeriodRequest) -> bool:
        return (
            request.reuse is ReuseLevel.LOW
            or request.demand_bytes > self.config.llc_capacity
        )

    def on_pp_begin(
        self, thread: Thread, request: PeriodRequest
    ) -> tuple[int, AdmissionDecision]:
        if self.is_streaming(request):
            self.bypassed += 1
            return 0, AdmissionDecision.RUN
        return super().on_pp_begin(thread, request)

    def on_pp_end(self, thread: Thread, pp_id: int) -> Sequence[Thread]:
        if pp_id == 0:  # a bypassed streaming period holds nothing
            return ()
        return super().on_pp_end(thread, pp_id)


def partitioned_kernel(
    policy: Optional[SchedulingPolicy] = None,
    config: Optional[MachineConfig] = None,
    streaming_partition_bytes: Optional[int] = None,
    streaming_reuse_threshold: float = 0.15,
) -> Kernel:
    """A kernel whose LLC is way-partitioned and whose RDA matches it."""
    config = config or default_machine_config()
    if streaming_partition_bytes is None:
        streaming_partition_bytes = config.llc_capacity // 8
    model = PartitionedLlcModel(
        config.llc_capacity,
        streaming_partition_bytes=streaming_partition_bytes,
        streaming_reuse_threshold=streaming_reuse_threshold,
    )
    scheduler = PartitioningRdaScheduler(
        policy=policy,
        config=config,
        streaming_partition_bytes=streaming_partition_bytes,
    )
    machine = Machine(config, llc_model=model)
    return Kernel(config=config, extension=scheduler, machine=machine)
