"""The progress-period concept (paper section 2).

A *progress period* describes a duration of an application's execution whose
resource demand for data storage remains roughly constant.  Its composition
(§2.2) is:

1. instructions marking the execution entry point,
2. instructions marking the execution exit point,
3. the targeted resource,
4. the working-set size, and
5. the relative amount of data reuse.

In this reproduction the entry/exit "instructions" are calls into
:class:`repro.core.api.ProgressPeriodApi` made by the simulated workloads;
the remaining three fields live in :class:`PeriodRequest`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Hashable, Optional

from ..errors import ProgressPeriodError

__all__ = [
    "ResourceKind",
    "ReuseLevel",
    "PeriodRequest",
    "PeriodState",
    "ProgressPeriod",
    "ensure_pp_ids_above",
]


class ResourceKind(enum.Enum):
    """Hardware resources a progress period may target.

    The paper's prototype manages the shared last-level cache; the framework
    is "configurable to allow multiple hardware resources to be targeted"
    (§6), so the enum carries the obvious candidates.
    """

    LLC = "llc"
    MEMORY_BANDWIDTH = "membw"
    DRAM_CAPACITY = "dram"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ReuseLevel(enum.Enum):
    """Relative temporal-locality factor of a working set (§2.2).

    The paper quantizes reuse into three levels (Table 2).  ``fraction``
    gives the canonical numeric interpretation used by the analytical
    contention model: the fraction of LLC accesses that re-touch the
    working set.
    """

    LOW = "low"
    MEDIUM = "med"
    HIGH = "high"

    @property
    def fraction(self) -> float:
        return _REUSE_FRACTION[self]

    @classmethod
    def from_fraction(cls, fraction: float) -> "ReuseLevel":
        """Nearest categorical level for a numeric reuse fraction."""
        if not 0.0 <= fraction <= 1.0:
            raise ProgressPeriodError(f"reuse fraction out of range: {fraction}")
        best = min(cls, key=lambda lvl: abs(lvl.fraction - fraction))
        return best

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_REUSE_FRACTION = {
    ReuseLevel.LOW: 0.10,
    ReuseLevel.MEDIUM: 0.55,
    ReuseLevel.HIGH: 0.92,
}


@dataclass(frozen=True)
class PeriodRequest:
    """The demand declaration passed to ``pp_begin`` (figure 4).

    Attributes:
        resource: hardware resource targeted (``RESOURCE_LLC`` in the paper).
        demand_bytes: working-set size, e.g. ``MB(6.3)`` for DGEMM.
        reuse: relative temporal-locality factor (``REUSE_HIGH`` etc.).
        sharing_key: optional key identifying a working set shared by several
            threads of one process; demands with one key are admitted and
            accounted once (SPLASH-2 threads share their data).
        label: human-readable tag for reports and traces.
    """

    resource: ResourceKind
    demand_bytes: int
    reuse: ReuseLevel
    sharing_key: Optional[Hashable] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.demand_bytes < 0:
            raise ProgressPeriodError(
                f"working-set size must be non-negative, got {self.demand_bytes}"
            )


class PeriodState(enum.Enum):
    """Lifecycle of a progress period inside the scheduler."""

    REQUESTED = "requested"  # pp_begin seen, decision pending
    RUNNING = "running"  # admitted, demand charged to the resource
    WAITING = "waiting"  # denied, parked on the resource waitlist
    COMPLETED = "completed"  # pp_end seen, demand released


_pp_ids = itertools.count(1)


def ensure_pp_ids_above(pp_id: int) -> None:
    """Advance the global period-id counter past ``pp_id``.

    Journal replay (``repro.serve.journal``) restores periods with their
    original identifiers in a *fresh* process, where the counter restarts
    at 1; without this floor a new ``pp_begin`` could reuse a replayed id
    and collide in the registry.
    """
    global _pp_ids
    current = next(_pp_ids)  # never move the counter backwards
    _pp_ids = itertools.count(max(current, pp_id + 1))


@dataclass(eq=False)  # identity semantics: a period is an entity, not a value
class ProgressPeriod:
    """A live progress period tracked by the progress monitor.

    ``pp_id`` is the unique identifier returned to the application by
    ``pp_begin`` and passed back to ``pp_end`` (figure 4, lines 6–8).
    """

    request: PeriodRequest
    owner: object  # the sim Thread that opened the period
    pp_id: int = field(default_factory=lambda: next(_pp_ids))
    state: PeriodState = PeriodState.REQUESTED
    begin_time: float = 0.0
    admit_time: Optional[float] = None
    end_time: Optional[float] = None
    #: admitted by the starvation guard, bypassing the policy predicate —
    #: such periods are exempt from the sanitizer's demand-bound invariant
    forced: bool = False

    @property
    def demand_bytes(self) -> int:
        return self.request.demand_bytes

    @property
    def resource(self) -> ResourceKind:
        return self.request.resource

    @property
    def waited_s(self) -> float:
        """Time spent parked on the waitlist before admission."""
        if self.admit_time is None:
            return 0.0
        return max(0.0, self.admit_time - self.begin_time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PP #{self.pp_id} {self.request.label or self.resource} "
            f"{self.demand_bytes}B {self.request.reuse} {self.state.value}>"
        )
