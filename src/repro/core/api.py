"""The user-level progress-period API (paper §2.3, figure 4).

The paper's applications call::

    pp_id = pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH);
    DGEMM(n, A, B, C);
    pp_end(pp_id);

:class:`ProgressPeriodApi` is the direct analogue for code driving the
scheduler outside the simulated kernel — unit tests, the examples, and any
host application that wants to exercise admission logic directly.  Inside
the simulation, workloads declare periods on their phases and the kernel
performs the equivalent calls at phase boundaries.

``MB`` and the ``RESOURCE_*`` / ``REUSE_*`` constants mirror the paper's C
macros so figure 4 transliterates one-to-one (see ``examples/quickstart.py``).
"""

from __future__ import annotations

from ..errors import BlockingSyncInPeriodError, ProgressPeriodError
from .progress_monitor import ProgressMonitor
from .progress_period import (
    PeriodRequest,
    PeriodState,
    ProgressPeriod,
    ResourceKind,
    ReuseLevel,
)

__all__ = [
    "MB",
    "KB",
    "RESOURCE_LLC",
    "REUSE_LOW",
    "REUSE_MED",
    "REUSE_HIGH",
    "ProgressPeriodApi",
]


def MB(x: float) -> int:
    """``MB(6.3)`` of figure 4 — mebibytes to bytes."""
    return int(x * 1024 * 1024)


def KB(x: float) -> int:
    return int(x * 1024)


RESOURCE_LLC = ResourceKind.LLC
REUSE_LOW = ReuseLevel.LOW
REUSE_MED = ReuseLevel.MEDIUM
REUSE_HIGH = ReuseLevel.HIGH


class ProgressPeriodApi:
    """Figure-4-style begin/end calls over a progress monitor.

    The API also enforces the §3.4 restriction that progress periods must
    not contain blocking synchronization: callers flag blocking operations
    through :meth:`blocking_sync`, which raises if any period is open for
    that caller.
    """

    def __init__(self, monitor: ProgressMonitor, owner: object = None) -> None:
        self.monitor = monitor
        self.owner = owner if owner is not None else self
        self._open: dict[int, ProgressPeriod] = {}

    # ------------------------------------------------------------------
    def pp_begin(
        self,
        resource: ResourceKind,
        demand_bytes: int,
        reuse: ReuseLevel,
        label: str = "",
        sharing_key: object = None,
    ) -> int:
        """Start a progress period; returns its unique identifier.

        The calling process is expected to proceed only if the period was
        admitted; check :meth:`is_admitted` (the simulated kernel instead
        blocks the thread on its wait queue).  ``sharing_key`` marks a
        working set shared with sibling callers: demands under one key are
        charged to the resource once (§3.2).
        """
        request = PeriodRequest(
            resource=resource,
            demand_bytes=demand_bytes,
            reuse=reuse,
            sharing_key=sharing_key,
            label=label,
        )
        period = self.monitor.begin(self.owner, request)
        self._open[period.pp_id] = period
        return period.pp_id

    def pp_end(self, pp_id: int) -> list[ProgressPeriod]:
        """End a progress period previously returned by :meth:`pp_begin`.

        Returns the previously waiting periods the freed capacity admitted,
        so online callers (the ``repro.serve`` admission service) can wake
        their owners; the figure-4 application path ignores the list.
        """
        if pp_id not in self._open:
            raise ProgressPeriodError(
                f"pp_end({pp_id}): not an open period of this caller"
            )
        del self._open[pp_id]
        _, admitted = self.monitor.end(pp_id)
        return admitted

    def pp_cancel(self, pp_id: int) -> list[ProgressPeriod]:
        """Withdraw a period without completing it (owner gave up / died).

        A parked period leaves the waitlist; an admitted one releases its
        demand.  Returns any waiters admitted by the freed capacity.
        """
        if pp_id not in self._open:
            raise ProgressPeriodError(
                f"pp_cancel({pp_id}): not an open period of this caller"
            )
        del self._open[pp_id]
        _, admitted = self.monitor.cancel(pp_id)
        return admitted

    def adopt(self, period: ProgressPeriod) -> None:
        """Track an already-registered period as open under this caller.

        Journal replay (``repro.serve.journal``) rebuilds admitted periods
        directly in the monitor; this re-links them to the owning client's
        API instance so the normal ``pp_end`` / ``pp_cancel`` paths work.
        """
        if period.pp_id in self._open:
            raise ProgressPeriodError(
                f"adopt({period.pp_id}): already open under this caller"
            )
        if period.owner is not self.owner:
            raise ProgressPeriodError(
                f"adopt({period.pp_id}): period belongs to {period.owner!r}"
            )
        self._open[period.pp_id] = period

    # ------------------------------------------------------------------
    def is_admitted(self, pp_id: int) -> bool:
        period = self._open.get(pp_id)
        if period is None:
            raise ProgressPeriodError(f"unknown open period {pp_id}")
        return period.state is PeriodState.RUNNING

    def blocking_sync(self) -> None:
        """Declare a blocking synchronization point (barrier, lock, ...).

        Raises :class:`BlockingSyncInPeriodError` if any progress period is
        open: "we currently do not allow progress periods to contain
        blocking synchronizations" (§3.4).
        """
        if self._open:
            open_ids = sorted(self._open)
            raise BlockingSyncInPeriodError(
                f"blocking synchronization inside open progress period(s) "
                f"{open_ids}; synchronize outside periods and let the "
                f"default OS policy schedule that duration"
            )

    def period(self, pp_id: int) -> ProgressPeriod:
        """Access the live period record (tests, introspection)."""
        period = self._open.get(pp_id)
        if period is None:
            raise ProgressPeriodError(f"unknown open period {pp_id}")
        return period

    @property
    def open_count(self) -> int:
        return len(self._open)

    def open_ids(self) -> list[int]:
        """Identifiers of this caller's open periods (oldest first)."""
        return list(self._open)
