"""The resource monitor (paper §3.2).

Maintains a real-time estimation of how heavily the running processes use
the system's hardware: "a table is used to keep track of the current load
level for the resources, where an entry is allocated to each resource to
save its current usage level".  Updates happen whenever a process enters or
completes a progress period.

Working sets shared by sibling threads (one ``sharing_key``) are charged
once and released when the last holder leaves, mirroring how one process's
threads occupy one copy of their data in the LLC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable

from ..errors import ResourceError
from .progress_period import PeriodRequest, ResourceKind

__all__ = ["ResourceState", "ResourceMonitor"]


@dataclass
class ResourceState:
    """Capacity and live usage of one hardware resource."""

    kind: ResourceKind
    capacity_bytes: int
    usage_bytes: int = 0
    #: refcounts for shared working sets currently charged
    _shared_holders: Dict[Hashable, int] = field(default_factory=dict, repr=False)
    #: bytes charged for each shared key (charged once)
    _shared_bytes: Dict[Hashable, int] = field(default_factory=dict, repr=False)

    @property
    def remaining_bytes(self) -> int:
        """Unused space: ``capacity − usage`` (may be negative when a policy
        permits oversubscription)."""
        return self.capacity_bytes - self.usage_bytes

    @property
    def utilization(self) -> float:
        return self.usage_bytes / self.capacity_bytes if self.capacity_bytes else 0.0

    # ------------------------------------------------------------------
    def charge(self, request: PeriodRequest) -> int:
        """Charge a period's demand; returns the bytes actually added.

        A shared working set is added only for its first holder.
        """
        key = request.sharing_key
        if key is not None:
            holders = self._shared_holders.get(key, 0)
            self._shared_holders[key] = holders + 1
            if holders:
                return 0
            self._shared_bytes[key] = request.demand_bytes
        self.usage_bytes += request.demand_bytes
        return request.demand_bytes

    def release(self, request: PeriodRequest) -> int:
        """Release a period's demand; returns the bytes actually removed."""
        key = request.sharing_key
        if key is not None:
            holders = self._shared_holders.get(key, 0)
            if holders <= 0:
                raise ResourceError(f"release of unheld shared key {key!r}")
            if holders > 1:
                self._shared_holders[key] = holders - 1
                return 0
            del self._shared_holders[key]
            charged = self._shared_bytes.pop(key)
        else:
            charged = request.demand_bytes
        self.usage_bytes -= charged
        if self.usage_bytes < 0:
            raise ResourceError(
                f"{self.kind}: usage went negative ({self.usage_bytes})"
            )
        return charged

    def resize(self, request: PeriodRequest, new_bytes: int) -> int:
        """Re-size a *charged* request in place; returns the signed delta.

        Elastic re-admission (``repro.predict``) shrinks or grows a running
        reservation without releasing it.  For a shared working set the
        stored per-key charge is rewritten (all holders are billed once, so
        one resize covers them); for a private one the delta against the
        request's current demand is applied.  The caller is responsible for
        updating the period's ``PeriodRequest`` so the eventual release
        matches what is now charged.
        """
        if new_bytes < 0:
            raise ResourceError(f"{self.kind}: resize to negative demand {new_bytes}")
        key = request.sharing_key
        if key is not None:
            if self._shared_holders.get(key, 0) <= 0:
                raise ResourceError(f"resize of unheld shared key {key!r}")
            old = self._shared_bytes[key]
            self._shared_bytes[key] = new_bytes
        else:
            old = request.demand_bytes
        delta = new_bytes - old
        self.usage_bytes += delta
        if self.usage_bytes < 0:
            raise ResourceError(
                f"{self.kind}: usage went negative ({self.usage_bytes})"
            )
        return delta

    def would_add(self, request: PeriodRequest) -> int:
        """Bytes that *would* be charged by ``charge`` (0 for a held shared set)."""
        key = request.sharing_key
        if key is not None and self._shared_holders.get(key, 0) > 0:
            return 0
        return request.demand_bytes


class ResourceMonitor:
    """Table of :class:`ResourceState`, one entry per managed resource."""

    def __init__(self) -> None:
        self._table: Dict[ResourceKind, ResourceState] = {}
        #: observers notified of every charge/release via
        #: ``on_charge(request, bytes_added)`` / ``on_release(request,
        #: bytes_removed)`` — the sanitizer's conservation ledger hooks here
        self.observers: list = []

    def register(self, kind: ResourceKind, capacity_bytes: int) -> ResourceState:
        """Allocate the table entry for a resource."""
        if capacity_bytes <= 0:
            raise ResourceError(f"{kind}: capacity must be positive")
        if kind in self._table:
            raise ResourceError(f"{kind}: already registered")
        state = ResourceState(kind=kind, capacity_bytes=capacity_bytes)
        self._table[kind] = state
        return state

    def state(self, kind: ResourceKind) -> ResourceState:
        try:
            return self._table[kind]
        except KeyError:
            raise ResourceError(f"resource {kind} not registered") from None

    def known(self, kind: ResourceKind) -> bool:
        return kind in self._table

    def increment_load(self, request: PeriodRequest) -> int:
        """``increment_load`` of Algorithm 1."""
        added = self.state(request.resource).charge(request)
        for observer in self.observers:
            observer.on_charge(request, added)
        return added

    def release_load(self, request: PeriodRequest) -> int:
        """Inverse of :meth:`increment_load`, applied at period completion."""
        removed = self.state(request.resource).release(request)
        for observer in self.observers:
            observer.on_release(request, removed)
        return removed

    def resize_load(self, request: PeriodRequest, new_bytes: int) -> int:
        """Re-size a charged request; observers see the delta as a partial
        charge (growth) or partial release (shrink) so conservation ledgers
        stay balanced."""
        delta = self.state(request.resource).resize(request, new_bytes)
        if delta > 0:
            for observer in self.observers:
                observer.on_charge(request, delta)
        elif delta < 0:
            for observer in self.observers:
                observer.on_release(request, -delta)
        return delta

    def snapshot(self) -> Dict[ResourceKind, tuple[int, int]]:
        """Mapping of resource → (usage, capacity), for reports and tests."""
        return {
            k: (s.usage_bytes, s.capacity_bytes) for k, s in self._table.items()
        }
