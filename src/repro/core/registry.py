"""Registry of active progress periods (paper §3.1).

"The progress monitor stores all active progress period information in a
registry, so the resource usage footprint of each progress period can be
removed from our environment after the period completes."
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..errors import ProgressPeriodError, UnknownProgressPeriodError
from .progress_period import PeriodState, ProgressPeriod

__all__ = ["PeriodRegistry"]


class PeriodRegistry:
    """Index of live (requested / running / waiting) progress periods."""

    def __init__(self) -> None:
        self._by_id: Dict[int, ProgressPeriod] = {}

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[ProgressPeriod]:
        return iter(list(self._by_id.values()))

    def __contains__(self, pp_id: int) -> bool:
        return pp_id in self._by_id

    def add(self, period: ProgressPeriod) -> None:
        if period.pp_id in self._by_id:
            raise ProgressPeriodError(f"duplicate progress period id {period.pp_id}")
        if period.state is PeriodState.COMPLETED:
            raise ProgressPeriodError("cannot register a completed period")
        self._by_id[period.pp_id] = period

    def get(self, pp_id: int) -> ProgressPeriod:
        try:
            return self._by_id[pp_id]
        except KeyError:
            raise UnknownProgressPeriodError(pp_id) from None

    def find(self, pp_id: int) -> Optional[ProgressPeriod]:
        return self._by_id.get(pp_id)

    def remove(self, pp_id: int) -> ProgressPeriod:
        """Drop a period after completion; returns the removed record."""
        try:
            return self._by_id.pop(pp_id)
        except KeyError:
            raise UnknownProgressPeriodError(pp_id) from None

    def running(self) -> list[ProgressPeriod]:
        return [p for p in self._by_id.values() if p.state is PeriodState.RUNNING]

    def waiting(self) -> list[ProgressPeriod]:
        return [p for p in self._by_id.values() if p.state is PeriodState.WAITING]

    def of_owner(self, owner: object) -> list[ProgressPeriod]:
        """All live periods opened by one thread."""
        return [p for p in self._by_id.values() if p.owner is owner]
