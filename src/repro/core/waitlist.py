"""The resource waitlist (paper §3.1 / figures 5–6).

Processes whose progress period is denied are "placed on a resource waitlist
so they may be rescheduled later when another progress period completes and
releases sufficient resources".  The list is FIFO per resource, which gives
the oldest waiter the first chance at freed capacity and guarantees absence
of starvation under any policy that admits a lone period that fits.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, Optional

from ..errors import ProgressPeriodError
from .progress_period import ProgressPeriod, ResourceKind

__all__ = ["Waitlist"]


class Waitlist:
    """FIFO queues of denied progress periods, one per resource kind.

    Args:
        strict_fifo: when True, :meth:`drain_admissible` stops at the first
            waiter the predicate rejects — strict arrival-order fairness,
            at the cost of head-of-line blocking.  The default (False)
            matches the paper's prototype: scan the whole queue so a small
            period can slip past a large head waiter and keep cores busy.
            ``benchmarks/bench_ablation_waitlist.py`` quantifies the trade.
    """

    def __init__(self, strict_fifo: bool = False) -> None:
        self._queues: Dict[ResourceKind, Deque[ProgressPeriod]] = {}
        self.strict_fifo = strict_fifo

    def park(self, period: ProgressPeriod) -> None:
        """Append a denied period to its resource's queue."""
        q = self._queues.setdefault(period.resource, deque())
        if period in q:
            raise ProgressPeriodError(
                f"period #{period.pp_id} is already on the waitlist"
            )
        q.append(period)

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def waiting_on(self, resource: ResourceKind) -> int:
        return len(self._queues.get(resource, ()))

    def peek(self, resource: ResourceKind) -> Optional[ProgressPeriod]:
        q = self._queues.get(resource)
        return q[0] if q else None

    def position(self, period: ProgressPeriod) -> Optional[int]:
        """0-based queue position of a parked period (None if not parked).

        Online clients poll this through the ``query`` verb to see how far
        from the head of their resource's queue they are.
        """
        q = self._queues.get(period.resource)
        if not q:
            return None
        try:
            return list(q).index(period)
        except ValueError:
            return None

    def remove(self, period: ProgressPeriod) -> bool:
        """Drop a specific period (e.g. its owner died).  True if found."""
        q = self._queues.get(period.resource)
        if not q:
            return False
        try:
            q.remove(period)
        except ValueError:
            return False
        return True

    def drain_admissible(
        self,
        resource: ResourceKind,
        admit: Callable[[ProgressPeriod], bool],
    ) -> list[ProgressPeriod]:
        """Admit waiters in FIFO order while the predicate accepts them.

        Called when a progress period completes and frees capacity.  Every
        waiter the predicate accepts is removed and returned; the rest keep
        their relative order.  Scanning past the first rejection lets a
        small period slip past a large head waiter — the same choice the
        paper's prototype makes to keep cores busy ("attempting to schedule
        any waiting threads previously blocked due to resource constraints").

        In non-FIFO mode the scan restarts from the head after each
        admission: admitting a period can make an *earlier* waiter
        admissible (its shared working set is now charged, so its marginal
        demand drops to zero), which a single forward pass would strand
        until the next completion.  Each admitted period is removed from
        the queue before the scan resumes, so no period can be admitted
        twice in one drain.
        """
        q = self._queues.get(resource)
        if not q:
            return []
        admitted: list[ProgressPeriod] = []
        if self.strict_fifo:
            # head blocked: everyone behind it waits too
            while q and admit(q[0]):
                admitted.append(q.popleft())
            return admitted
        rescan = True
        while rescan:
            rescan = False
            for i, period in enumerate(q):
                if admit(period):
                    del q[i]  # removed before rescanning: no double admission
                    admitted.append(period)
                    rescan = True
                    break
        return admitted

    def all_waiting(self) -> Iterable[ProgressPeriod]:
        for q in self._queues.values():
            yield from q
