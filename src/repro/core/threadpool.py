"""Task-pool guard (paper §3.4).

"Scheduling processes by progress periods may also interfere with task-pool
based programming models ... if one of these threads enters a progress
period and is unable to run, our scheduler temporarily disables the whole
thread pool until there is sufficient resources for all of them."

:class:`ThreadPoolGuard` implements that rule over the progress monitor: a
pool declares its member demands up front; when any member's period is
denied, the guard reports the whole pool must pause, and it re-enables the
pool only when the *aggregate* demand of all members is admissible.
"""

from __future__ import annotations

from typing import Hashable

from ..errors import ProgressPeriodError
from .predicate import SchedulingPredicate
from .progress_period import ResourceKind

__all__ = ["ThreadPoolGuard"]


class ThreadPoolGuard:
    """Gate a task pool's members behind their aggregate resource demand."""

    def __init__(
        self,
        predicate: SchedulingPredicate,
        resource: ResourceKind = ResourceKind.LLC,
    ) -> None:
        self.predicate = predicate
        self.resource = resource
        self._disabled = False
        self._member_demands: dict[Hashable, int] = {}

    # ------------------------------------------------------------------
    def register_member(self, member: Hashable, demand_bytes: int) -> None:
        if demand_bytes < 0:
            raise ProgressPeriodError("member demand must be non-negative")
        self._member_demands[member] = demand_bytes

    def unregister_member(self, member: Hashable) -> None:
        self._member_demands.pop(member, None)

    @property
    def aggregate_demand(self) -> int:
        return sum(self._member_demands.values())

    @property
    def disabled(self) -> bool:
        return self._disabled

    # ------------------------------------------------------------------
    def on_member_denied(self) -> bool:
        """A member's period was denied: disable the whole pool.

        Returns True if this call transitioned the pool to disabled.
        """
        was = self._disabled
        self._disabled = True
        return not was

    def try_enable(self) -> bool:
        """Re-enable the pool when the aggregate demand is now admissible.

        Called when resources free up (a progress period elsewhere ended).
        """
        if not self._disabled:
            return True
        state = self.predicate.resources.state(self.resource)
        outcome = state.remaining_bytes - self.aggregate_demand
        if self.predicate.policy.allows(outcome, state):
            self._disabled = False
            return True
        return False
