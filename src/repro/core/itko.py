"""ITKO-style co-scheduling baseline (Kihm, Settle, Janiszewski & Connors).

The paper's §5 describes its closest prior work: "a scheduling extension
based on predicting inter-thread kickouts (ITKO) to co-schedule threads
that are less likely to evict each other's data.  Their strategy is
initially profiling an application ... and writing a bit to a file
indicating whether or not that interval exceeded an ITKO threshold.  They
pass this file to the OS, which ... schedules jobs based on whether or not
the threshold was reached."  The paper positions itself against it: "Our
approach is similar to this work; however, [it] maps the behavior to a
static code location ... allowing our scheduler to be less reliant on
input sensitivity."

:class:`ItkoScheduler` implements that baseline faithfully enough to test
the comparison: admission decisions come from a **static offline profile**
(phase name → working-set size measured at profiling time), not from the
application's just-in-time declarations.  Phases whose *profiled* working
set exceeds the hot threshold are "hot"; at most ``hot_slots`` hot phases
(sized so the profiled sets fill the LLC) run concurrently.  When the
production input differs from the profiled input, the bits are stale — the
input-sensitivity weakness the paper calls out.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Mapping, Optional, Sequence

from ..config import MachineConfig, default_machine_config
from ..errors import SchedulerError
from ..sim.kernel import AdmissionDecision, SchedulingExtension
from ..sim.process import Thread
from ..workloads.base import PhaseKind, Workload

__all__ = ["ItkoScheduler", "profile_workload"]


def profile_workload(workload: Workload) -> Dict[str, int]:
    """Offline profiling pass: phase name → working-set size.

    Stands in for the Valgrind profiling run of the ITKO paper; the values
    are whatever the workload's phases exhibit *at this input size* — run
    it on a differently-scaled workload and the profile goes stale.
    """
    profile: Dict[str, int] = {}
    for spec in workload.processes:
        for t in range(spec.n_threads):
            for phase in spec.program_for(t):
                if phase.kind is PhaseKind.COMPUTE:
                    profile.setdefault(phase.name, phase.wss_bytes)
    return profile


class ItkoScheduler(SchedulingExtension):
    """Static-profile co-scheduler limiting concurrently-hot phases.

    Args:
        profile: the offline profile (phase name → profiled WSS bytes).
        hot_threshold_bytes: a profiled set at or above this is "hot"
            (exceeded the ITKO threshold); default: 1/12 of the LLC — a
            core's fair share.
        config: machine description (LLC capacity sizes the hot slots).
    """

    def __init__(
        self,
        profile: Mapping[str, int],
        config: Optional[MachineConfig] = None,
        hot_threshold_bytes: Optional[int] = None,
    ) -> None:
        self.config = config or default_machine_config()
        self.profile = dict(profile)
        capacity = self.config.llc_capacity
        if hot_threshold_bytes is None:
            hot_threshold_bytes = capacity // 12
        self.hot_threshold_bytes = int(hot_threshold_bytes)
        hot_sizes = [w for w in self.profile.values() if w >= self.hot_threshold_bytes]
        if hot_sizes:
            mean_hot = sum(hot_sizes) / len(hot_sizes)
            self.hot_slots = max(1, int(capacity // mean_hot))
        else:
            self.hot_slots = 1 << 30  # nothing is hot; never gate
        self._hot_running = 0
        self._waiting: Deque[tuple[int, Thread]] = deque()
        #: pp_id -> slot key (None for cold periods)
        self._hot_periods: Dict[int, Optional[tuple]] = {}
        #: slot key -> holder refcount (sibling threads share one slot)
        self._slot_holders: Dict[tuple, int] = {}
        self._next_id = 1
        #: phases missing from the profile (never gated) — staleness signal
        self.unprofiled = 0

    @property
    def name(self) -> str:
        return "ITKO (static profile)"

    # ------------------------------------------------------------------
    def _is_hot(self, label: str) -> bool:
        profiled = self.profile.get(label)
        if profiled is None:
            self.unprofiled += 1
            return False
        return profiled >= self.hot_threshold_bytes

    def _slot_key(self, thread: Thread, label: str) -> tuple:
        """Sibling threads working on one data set share one hot slot."""
        return (thread.process.pid, label)

    def _acquire(self, key: tuple) -> bool:
        held = self._slot_holders.get(key, 0)
        if held:
            self._slot_holders[key] = held + 1
            return True
        if self._hot_running < self.hot_slots:
            self._hot_running += 1
            self._slot_holders[key] = 1
            return True
        return False

    def on_pp_begin(
        self, thread: Thread, request
    ) -> tuple[int, AdmissionDecision]:
        pp_id = self._next_id
        self._next_id += 1
        if not self._is_hot(request.label):
            self._hot_periods[pp_id] = None
            return pp_id, AdmissionDecision.RUN
        key = self._slot_key(thread, request.label)
        self._hot_periods[pp_id] = key
        if self._acquire(key):
            return pp_id, AdmissionDecision.RUN
        self._waiting.append((pp_id, thread))
        return pp_id, AdmissionDecision.WAIT

    def on_pp_end(self, thread: Thread, pp_id: int) -> Sequence[Thread]:
        if pp_id not in self._hot_periods:
            raise SchedulerError(f"ITKO: unknown period {pp_id}")
        key = self._hot_periods.pop(pp_id)
        if key is None:
            return ()
        held = self._slot_holders.get(key, 0)
        if held <= 0:  # pragma: no cover - defensive
            raise SchedulerError("ITKO: slot refcount went negative")
        if held > 1:
            self._slot_holders[key] = held - 1
            return ()
        del self._slot_holders[key]
        self._hot_running -= 1
        # Re-try every waiter once: new slots go out FIFO, and siblings of
        # already-held slots join for free regardless of position.
        woken: list[Thread] = []
        kept: Deque[tuple[int, Thread]] = deque()
        while self._waiting:
            pp, waiter = self._waiting.popleft()
            if self._acquire(self._hot_periods[pp]):
                woken.append(waiter)
            else:
                kept.append((pp, waiter))
        self._waiting = kept
        return woken

    def on_thread_exit(self, thread: Thread) -> Sequence[Thread]:
        # A dying thread cannot be woken later: drop its queued requests.
        # (Running periods are ended by the kernel before the exit.)
        self._waiting = deque(
            (pid, t) for pid, t in self._waiting if t is not thread
        )
        return ()
