"""The scheduling predicate — Algorithm 1 of the paper.

::

    function TrySchedule(pp, resource)
        remaining <- resource.capacity - resource.usage
        outcome   <- remaining - pp.demand
        runnable  <- apply_policy(outcome, resource)
        if runnable then
            increment_load(pp.demand)
            schedule(get_process(pp))
        else
            waitlist(pp)
        end if
    end function

The predicate itself only *decides and charges*; parking on the waitlist and
pausing/resuming threads is the progress monitor's job, so ``try_schedule``
returns a :class:`Decision` for the caller to act on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .progress_period import ProgressPeriod
from .policy import SchedulingPolicy
from .resource_monitor import ResourceMonitor

__all__ = ["Decision", "SchedulingPredicate"]


class Decision(enum.Enum):
    """Outcome of Algorithm 1 for one progress period."""

    RUN = "run"
    WAIT = "wait"

    @property
    def runnable(self) -> bool:
        return self is Decision.RUN


@dataclass
class PredicateStats:
    """Counters for reporting and tests."""

    evaluated: int = 0
    admitted: int = 0
    denied: int = 0


class SchedulingPredicate:
    """Decides whether a thread may run at each new resource behaviour."""

    def __init__(self, resources: ResourceMonitor, policy: SchedulingPolicy) -> None:
        self.resources = resources
        self.policy = policy
        self.stats = PredicateStats()

    def evaluate(self, period: ProgressPeriod) -> Decision:
        """Apply Algorithm 1 *without* charging the load (pure decision)."""
        resource = self.resources.state(period.resource)
        # Shared working sets already charged by a sibling add nothing.
        effective_demand = resource.would_add(period.request)
        remaining = resource.capacity_bytes - resource.usage_bytes
        outcome = remaining - effective_demand
        runnable = self.policy.allows(outcome, resource)
        self.stats.evaluated += 1
        return Decision.RUN if runnable else Decision.WAIT

    def try_schedule(self, period: ProgressPeriod) -> Decision:
        """Algorithm 1: decide, and on admission charge the resource load."""
        decision = self.evaluate(period)
        if decision.runnable:
            self.resources.increment_load(period.request)
            self.stats.admitted += 1
        else:
            self.stats.denied += 1
        return decision
