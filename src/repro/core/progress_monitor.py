"""The progress monitor (paper §3.1, figures 5 and 6).

Responsibilities, verbatim from the paper:

* communicate with applications (receive ``pp_begin`` / ``pp_end``),
* maintain all progress-period related information (the registry),
* attempt to schedule waiting threads previously blocked due to resource
  constraints (drain the waitlist when capacity frees up).

The monitor is deliberately kernel-agnostic: it records decisions and
returns them; :class:`repro.core.rda.RdaScheduler` translates decisions into
actual thread pause/wake calls on the simulated kernel.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from ..errors import ProgressPeriodError
from .predicate import Decision, SchedulingPredicate
from .progress_period import PeriodRequest, PeriodState, ProgressPeriod
from .registry import PeriodRegistry
from .resource_monitor import ResourceMonitor
from .waitlist import Waitlist

__all__ = ["ProgressMonitor"]


class ProgressMonitor:
    """Tracks progress-period entry/exit and drives admission decisions."""

    def __init__(
        self,
        resources: ResourceMonitor,
        predicate: SchedulingPredicate,
        clock: Callable[[], float],
        registry: Optional[PeriodRegistry] = None,
        waitlist: Optional[Waitlist] = None,
    ) -> None:
        self.resources = resources
        self.predicate = predicate
        self.clock = clock
        self.registry = registry if registry is not None else PeriodRegistry()
        self.waitlist = waitlist if waitlist is not None else Waitlist()
        #: completed periods kept for post-run analysis
        self.history: list[ProgressPeriod] = []

    # ------------------------------------------------------------------
    # figure 5: application begins a progress period
    def begin(self, owner: object, request: PeriodRequest) -> ProgressPeriod:
        """Handle ``pp_begin``: create, register and try to schedule a period.

        Returns the period; its ``state`` tells the caller whether the owner
        may continue running (``RUNNING``) or must pause (``WAITING``).
        """
        now = self.clock()
        period = ProgressPeriod(request=request, owner=owner, begin_time=now)
        self.registry.add(period)
        decision = self.predicate.try_schedule(period)
        if decision is Decision.RUN:
            period.state = PeriodState.RUNNING
            period.admit_time = now
        else:
            period.state = PeriodState.WAITING
            self.waitlist.park(period)
        return period

    # ------------------------------------------------------------------
    # figure 6: application ends a progress period
    def end(self, pp_id: int) -> tuple[ProgressPeriod, list[ProgressPeriod]]:
        """Handle ``pp_end``: release the demand and re-try waiting periods.

        Returns ``(completed, admitted)`` where ``admitted`` lists the
        previously waiting periods that the freed capacity let in; the
        caller must wake their owners.
        """
        period = self.registry.remove(pp_id)
        if period.state is PeriodState.RUNNING:
            self.resources.release_load(period.request)
        elif period.state is PeriodState.WAITING:
            # The owner is blocked, so a well-formed application cannot end a
            # waiting period; tolerate it for robustness (e.g. owner killed).
            self.waitlist.remove(period)
        else:  # pragma: no cover - defensive
            raise ProgressPeriodError(
                f"period #{pp_id} ended in unexpected state {period.state}"
            )
        now = self.clock()
        period.state = PeriodState.COMPLETED
        period.end_time = now
        self.history.append(period)
        admitted = self._retry_waiters(period)
        return period, admitted

    def _retry_waiters(self, completed: ProgressPeriod) -> list[ProgressPeriod]:
        """Figure 6's "attempt to schedule waiting threads" step."""
        now = self.clock()
        admitted = self.waitlist.drain_admissible(
            completed.resource,
            lambda p: self.predicate.try_schedule(p) is Decision.RUN,
        )
        for p in admitted:
            p.state = PeriodState.RUNNING
            p.admit_time = now
        return admitted

    # ------------------------------------------------------------------
    def resize(
        self, pp_id: int, new_demand_bytes: int
    ) -> tuple[ProgressPeriod, list[ProgressPeriod]]:
        """Elastically re-size a RUNNING period's reservation in place.

        Used by the prediction subsystem when a learned working-set
        estimate diverges from the demand a period was admitted on.  The
        charged bytes move to ``new_demand_bytes`` and the period's request
        is rewritten so the eventual ``pp_end`` releases what is charged.
        A shrink frees capacity, so the waitlist is re-tried; returns
        ``(period, admitted)``.
        """
        if new_demand_bytes < 0:
            raise ProgressPeriodError(
                f"resize to negative demand {new_demand_bytes}"
            )
        period = self.registry.get(pp_id)
        if period.state is not PeriodState.RUNNING:
            raise ProgressPeriodError(
                f"period #{pp_id} is {period.state.value}; only RUNNING "
                "periods can be resized"
            )
        delta = self.resources.resize_load(period.request, new_demand_bytes)
        period.request = replace(period.request, demand_bytes=new_demand_bytes)
        admitted: list[ProgressPeriod] = []
        if delta < 0:
            admitted = self._retry_waiters(period)
        return period, admitted

    # ------------------------------------------------------------------
    def cancel(self, pp_id: int) -> tuple[ProgressPeriod, list[ProgressPeriod]]:
        """Withdraw one period before its natural ``pp_end``.

        Used when the period's owner gives up — a parked client timing out,
        or an online caller disconnecting.  A RUNNING period releases its
        demand (and the freed capacity retries the waitlist); a WAITING one
        simply leaves the queue.  Returns ``(cancelled, admitted)``.
        """
        period = self.registry.remove(pp_id)
        admitted: list[ProgressPeriod] = []
        if period.state is PeriodState.RUNNING:
            self.resources.release_load(period.request)
        elif period.state is PeriodState.WAITING:
            self.waitlist.remove(period)
        period.state = PeriodState.COMPLETED
        period.end_time = self.clock()
        self.history.append(period)
        if period.admit_time is not None:
            admitted = self._retry_waiters(period)
        return period, admitted

    def restore(self, period: ProgressPeriod) -> None:
        """Re-admit a period recovered from a crash-safe journal.

        The period was RUNNING when the previous incarnation of the service
        died: register it and charge its demand without consulting the
        predicate (it was already admitted under the same policy).  The
        ``forced`` flag must be set by the caller *before* this call so the
        demand-bound invariant of any attached sanitizer sees a live forced
        admission the moment usage jumps.
        """
        period.state = PeriodState.RUNNING
        if period.admit_time is None:
            period.admit_time = self.clock()
        self.registry.add(period)
        self.resources.increment_load(period.request)

    def force_admit(self, period: ProgressPeriod) -> None:
        """Starvation-guard admission: bypass the predicate and charge.

        The period leaves the waitlist, its demand is charged, and it is
        flagged ``forced`` so the sanitizer's demand-bound invariant knows
        the policy was deliberately overridden.
        """
        self.waitlist.remove(period)
        # flag forced *before* charging so resource observers (the serve
        # sanitizer) see a live forced admission the moment usage jumps
        period.forced = True
        period.state = PeriodState.RUNNING
        period.admit_time = self.clock()
        self.resources.increment_load(period.request)

    # ------------------------------------------------------------------
    def abandon_owner(self, owner: object) -> list[ProgressPeriod]:
        """Clean up periods left open by a dying thread.

        Releases running demands, unparks waiting ones, and returns any
        waiters admitted by the freed capacity.
        """
        admitted: list[ProgressPeriod] = []
        for period in self.registry.of_owner(owner):
            self.registry.remove(period.pp_id)
            if period.state is PeriodState.RUNNING:
                self.resources.release_load(period.request)
                admitted.extend(self._retry_waiters(period))
            elif period.state is PeriodState.WAITING:
                self.waitlist.remove(period)
            period.state = PeriodState.COMPLETED
            period.end_time = self.clock()
            self.history.append(period)
        return admitted

    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        return len(self.registry)

    @property
    def waiting_count(self) -> int:
        return len(self.waitlist)
