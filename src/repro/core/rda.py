"""RdaScheduler: the demand-aware extension wired into the kernel.

This class is the top of figure 2: it owns the progress monitor, resource
monitor, scheduling predicate and waitlist, and implements the kernel's
:class:`~repro.sim.kernel.SchedulingExtension` hook so that progress-period
transitions translate into pause (wait queue) and resume (wake event)
operations on the simulated Linux scheduler.

The kernel ignores processes that never call the API — they schedule under
the default policy untouched, exactly as in the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import MachineConfig, default_machine_config
from ..sim.kernel import AdmissionDecision, Kernel, SchedulingExtension
from ..sim.process import Thread
from .policy import SchedulingPolicy, StrictPolicy
from .predicate import Decision, SchedulingPredicate
from .progress_monitor import ProgressMonitor
from .progress_period import PeriodRequest, PeriodState, ResourceKind
from .registry import PeriodRegistry
from .resource_monitor import ResourceMonitor
from .waitlist import Waitlist

__all__ = ["RdaScheduler"]


class RdaScheduler(SchedulingExtension):
    """Resource-demand-aware scheduling extension (the paper's system).

    Args:
        policy: admission policy — :class:`~repro.core.policy.StrictPolicy`
            or :class:`~repro.core.policy.CompromisePolicy` (the paper's two
            configurations), or any custom policy.
        config: machine description; the managed LLC capacity comes from
            ``config.llc_capacity``.
        starvation_guard: admit a waiting period when the managed resource
            is completely idle even if the policy rejects it.  The paper
            assumes every individual working set fits in the cache (§3.4
            constraint 1), so the guard never fires in its experiments; it
            turns a mis-annotated application into a slow one instead of a
            deadlocked one.
    """

    def __init__(
        self,
        policy: Optional[SchedulingPolicy] = None,
        config: Optional[MachineConfig] = None,
        starvation_guard: bool = True,
        extra_resources: Optional[dict[ResourceKind, int]] = None,
        strict_fifo_waitlist: bool = False,
    ) -> None:
        self.config = config or default_machine_config()
        self.policy = policy or StrictPolicy()
        self.strict_fifo_waitlist = strict_fifo_waitlist
        self.resources = ResourceMonitor()
        self.llc = self.resources.register(
            ResourceKind.LLC, self.config.llc_capacity
        )
        # The framework is "configurable to allow multiple hardware
        # resources to be targeted" (§6): register any further capacities.
        self.managed_kinds: list[ResourceKind] = [ResourceKind.LLC]
        for kind, capacity in (extra_resources or {}).items():
            self.resources.register(kind, capacity)
            self.managed_kinds.append(kind)
        self.predicate = SchedulingPredicate(self.resources, self.policy)
        self.registry = PeriodRegistry()
        self.waitlist = Waitlist(strict_fifo=strict_fifo_waitlist)
        self.starvation_guard = starvation_guard
        self._clock = lambda: 0.0
        self.monitor = ProgressMonitor(
            resources=self.resources,
            predicate=self.predicate,
            clock=lambda: self._clock(),
            registry=self.registry,
            waitlist=self.waitlist,
        )
        #: forced admissions performed by the starvation guard
        self.forced_admissions = 0

    # ------------------------------------------------------------------
    def attach(self, kernel: Kernel) -> None:
        super().attach(kernel)
        self._clock = lambda: kernel.engine.now

    @property
    def name(self) -> str:
        return self.policy.name

    # ------------------------------------------------------------------
    # SchedulingExtension hooks
    # ------------------------------------------------------------------
    def on_pp_begin(
        self, thread: Thread, request: PeriodRequest
    ) -> tuple[int, AdmissionDecision]:
        period = self.monitor.begin(thread, request)
        if period.state is PeriodState.WAITING and self._should_force(period):
            self._force_admit(period)
        decision = (
            AdmissionDecision.RUN
            if period.state is PeriodState.RUNNING
            else AdmissionDecision.WAIT
        )
        return period.pp_id, decision

    def on_pp_end(self, thread: Thread, pp_id: int) -> Sequence[Thread]:
        _, admitted = self.monitor.end(pp_id)
        admitted.extend(self._rescue_starved())
        return [p.owner for p in admitted]

    def on_thread_exit(self, thread: Thread) -> Sequence[Thread]:
        admitted = self.monitor.abandon_owner(thread)
        admitted.extend(self._rescue_starved())
        return [p.owner for p in admitted]

    # ------------------------------------------------------------------
    # starvation guard
    # ------------------------------------------------------------------
    def _should_force(self, period) -> bool:
        return (
            self.starvation_guard
            and self.resources.state(period.resource).usage_bytes == 0
        )

    def _force_admit(self, period) -> None:
        self.monitor.force_admit(period)
        self.forced_admissions += 1

    def _rescue_starved(self) -> list:
        """After releases, never leave an idle resource with a waiting queue."""
        rescued = []
        if not self.starvation_guard:
            return rescued
        for kind in self.managed_kinds:
            state = self.resources.state(kind)
            head = self.waitlist.peek(kind)
            if state.usage_bytes == 0 and head is not None:
                self._force_admit(head)
                rescued.append(head)
        return rescued

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line status for logs and reports."""
        return (
            f"RDA[{self.policy.name}] usage={self.llc.usage_bytes}B/"
            f"{self.llc.capacity_bytes}B active={len(self.registry)} "
            f"waiting={len(self.waitlist)}"
        )
