"""The paper's primary contribution: resource-demand-aware scheduling.

Components map one-to-one onto figure 2 of the paper:

* :mod:`repro.core.progress_period` — the progress-period concept (§2),
* :mod:`repro.core.api` — the ``pp_begin`` / ``pp_end`` user API (§2.3),
* :mod:`repro.core.progress_monitor` — tracks period entry/exit (§3.1),
* :mod:`repro.core.resource_monitor` — real-time load table (§3.2),
* :mod:`repro.core.predicate` — Algorithm 1, the run/pause decision (§3.3),
* :mod:`repro.core.policy` — RDA:Strict and RDA:Compromise policies (§3.3),
* :mod:`repro.core.waitlist` — the resource waitlist for paused threads,
* :mod:`repro.core.rda` — :class:`RdaScheduler`, wiring it all into the
  kernel's extension hook.
"""

from .progress_period import (
    ProgressPeriod,
    PeriodRequest,
    ReuseLevel,
    ResourceKind,
    PeriodState,
)
from .policy import SchedulingPolicy, StrictPolicy, CompromisePolicy, AlwaysAdmitPolicy
from .registry import PeriodRegistry
from .resource_monitor import ResourceMonitor, ResourceState
from .waitlist import Waitlist
from .predicate import SchedulingPredicate, Decision
from .progress_monitor import ProgressMonitor
from .rda import RdaScheduler
from .api import ProgressPeriodApi
from .itko import ItkoScheduler, profile_workload
from .partitioning import PartitioningRdaScheduler, partitioned_kernel
from .threadpool import ThreadPoolGuard

__all__ = [
    "ProgressPeriod",
    "PeriodRequest",
    "ReuseLevel",
    "ResourceKind",
    "PeriodState",
    "SchedulingPolicy",
    "StrictPolicy",
    "CompromisePolicy",
    "AlwaysAdmitPolicy",
    "PeriodRegistry",
    "ResourceMonitor",
    "ResourceState",
    "Waitlist",
    "SchedulingPredicate",
    "Decision",
    "ProgressMonitor",
    "RdaScheduler",
    "ProgressPeriodApi",
    "ItkoScheduler",
    "profile_workload",
    "PartitioningRdaScheduler",
    "partitioned_kernel",
    "ThreadPoolGuard",
]
