"""Virtual address-space layout helpers for synthetic trace generation.

Trace generators lay out the arrays of a modelled application as
:class:`Region` objects inside an :class:`AddressSpace`, then emit accesses
as region-relative offsets.  Keeping the layout explicit makes generated
traces realistic (distinct arrays never alias) and lets tests assert
footprint arithmetic exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import ProfilerError

__all__ = ["Region", "AddressSpace"]

#: regions are aligned to 2 MiB boundaries (huge-page style)
_ALIGN = 2 * 1024 * 1024


@dataclass(frozen=True)
class Region:
    """A contiguous array in the simulated virtual address space."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def addr(self, offset):
        """Absolute address(es) for byte offset(s) into the region.

        Accepts scalars or numpy arrays; offsets wrap modulo the region so
        generators can index freely with logical element numbers.
        """
        return self.base + np.asarray(offset, dtype=np.int64) % self.size

    def element_addr(self, index, element_bytes: int):
        """Address(es) of fixed-size element(s), wrapping modulo the region."""
        return self.addr(np.asarray(index, dtype=np.int64) * element_bytes)


class AddressSpace:
    """Allocator handing out non-overlapping, aligned regions."""

    def __init__(self, base: int = 0x10_0000_0000) -> None:
        self._next = base
        self._regions: Dict[str, Region] = {}

    def alloc(self, name: str, size: int) -> Region:
        if size <= 0:
            raise ProfilerError(f"region {name!r}: size must be positive")
        if name in self._regions:
            raise ProfilerError(f"region {name!r} already allocated")
        base = self._next
        region = Region(name=name, base=base, size=int(size))
        self._next = base + ((size + _ALIGN - 1) // _ALIGN) * _ALIGN
        self._regions[name] = region
        return region

    def __getitem__(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise ProfilerError(f"unknown region {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def regions(self) -> list[Region]:
        return list(self._regions.values())
