"""Memory-hierarchy substrate.

Two complementary models live here:

* a **trace-driven set-associative cache simulator** (:mod:`repro.mem.cache`,
  :mod:`repro.mem.hierarchy`) used by the profiler experiments and to
  validate the analytical model, and
* an **analytical shared-LLC contention model**
  (:mod:`repro.mem.contention`) that gives each co-running phase an LLC
  share proportional to its demand and derives its hit fraction, DRAM
  traffic and CPI.  This is the mechanism behind every figure in the
  paper's evaluation.
"""

from .contention import LlcDemand, SharedLlcModel, ContentionPoint
from .cache import Cache, ReplacementPolicy
from .hierarchy import CacheHierarchy, AccessResult
from .working_set import WindowStats, window_stats, reuse_level_of_ratio

__all__ = [
    "LlcDemand",
    "SharedLlcModel",
    "ContentionPoint",
    "Cache",
    "ReplacementPolicy",
    "CacheHierarchy",
    "AccessResult",
    "WindowStats",
    "window_stats",
    "reuse_level_of_ratio",
]
