"""Analytical model of shared last-level-cache contention.

This module encodes the single mechanism the paper's evaluation rests on:
when the working sets of co-scheduled processes collectively exceed the
shared LLC, each process keeps only a share of the cache, its reusable
accesses start missing, and both runtime and DRAM energy grow.

Model
-----
Each co-running phase *i* presents an :class:`LlcDemand` with a working-set
size ``w_i`` and a reuse fraction ``r_i`` (the fraction of its LLC accesses
that would hit if the working set were fully resident).  With LLC capacity
``C`` and total co-running demand ``W = Σ w_j``:

* **share**:   ``s_i = w_i``            if ``W ≤ C``
  otherwise    ``s_i = C · w_i / W``    (demand-proportional partitioning,
  the steady state of LRU sharing for similar access rates — see Qureshi &
  Patt's utility curves for the linear-regime approximation)
* **hot fraction**: ``h_i = min(1, (s_i / w_i) ** γ)`` — probability that a
  reusable line *survives until its next touch*.  The exponent ``γ`` (default
  2) models the LRU cliff: residency at a random instant scales with the
  share, but surviving a full reuse distance under eviction pressure falls
  off superlinearly, which is why shared-cache hit rates collapse rather
  than degrade gracefully once working sets overflow.
* **LLC hit probability** of an access that reaches the LLC:
  ``p_hit_i = r_i · h_i``.

Threads of the same process share an address space; demands carry a
``sharing_key`` so one working set held by many sibling threads is counted
once (SPLASH-2 style data sharing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Optional, Sequence

from ..errors import ResourceError

__all__ = ["LlcDemand", "ContentionPoint", "SharedLlcModel"]


@dataclass(frozen=True)
class LlcDemand:
    """LLC demand of one running phase.

    Attributes:
        wss_bytes: working-set size the phase keeps live in the LLC.
        reuse: fraction of the phase's LLC accesses that re-touch the
            working set (0 = pure streaming, 1 = perfect reuse).
        sharing_key: phases carrying the same key share one working set
            (threads of one process working on shared data); ``None`` means
            private.
    """

    wss_bytes: int
    reuse: float
    sharing_key: Optional[Hashable] = None

    def __post_init__(self) -> None:
        if self.wss_bytes < 0:
            raise ResourceError(f"negative working-set size: {self.wss_bytes}")
        if not 0.0 <= self.reuse <= 1.0:
            raise ResourceError(f"reuse must be in [0, 1], got {self.reuse}")


@dataclass(frozen=True)
class ContentionPoint:
    """Resolved contention state for one demand within a co-running set."""

    share_bytes: float
    hot_fraction: float
    total_demand_bytes: int
    oversubscribed: bool

    def hit_probability(self, reuse: float) -> float:
        """Probability that an LLC access with the given reuse fraction hits."""
        return reuse * self.hot_fraction


class SharedLlcModel:
    """Demand-proportional sharing model for the shared LLC.

    >>> model = SharedLlcModel(capacity_bytes=100)
    >>> a = LlcDemand(wss_bytes=80, reuse=0.9)
    >>> b = LlcDemand(wss_bytes=120, reuse=0.9)
    >>> pts = model.resolve([a, b])
    >>> round(pts[0].share_bytes)   # 100 * 80/200
    40
    >>> round(pts[0].hot_fraction, 2)   # (0.5) ** gamma with gamma=2
    0.25
    """

    def __init__(self, capacity_bytes: int, gamma: float = 2.0) -> None:
        if capacity_bytes <= 0:
            raise ResourceError("LLC capacity must be positive")
        if gamma < 1.0:
            raise ResourceError("gamma must be >= 1 (h may not exceed share/wss)")
        self.capacity_bytes = int(capacity_bytes)
        self.gamma = float(gamma)

    # ------------------------------------------------------------------
    def unique_demand_bytes(self, demands: Iterable[LlcDemand]) -> int:
        """Aggregate demand with shared working sets counted once."""
        total = 0
        seen: set[Hashable] = set()
        for d in demands:
            if d.sharing_key is not None:
                if d.sharing_key in seen:
                    continue
                seen.add(d.sharing_key)
            total += d.wss_bytes
        return total

    def resolve(self, demands: Sequence[LlcDemand]) -> list[ContentionPoint]:
        """Compute the contention point of every demand in a co-running set.

        Demands with the same ``sharing_key`` receive identical points and
        their working set is counted once toward the total.
        """
        total = self.unique_demand_bytes(demands)
        oversub = total > self.capacity_bytes
        scale = 1.0 if not oversub else self.capacity_bytes / total
        points: list[ContentionPoint] = []
        for d in demands:
            share = d.wss_bytes * scale
            hot = 1.0 if d.wss_bytes == 0 else min(1.0, scale) ** self.gamma
            points.append(
                ContentionPoint(
                    share_bytes=share,
                    hot_fraction=hot,
                    total_demand_bytes=total,
                    oversubscribed=oversub,
                )
            )
        return points

    def resolve_grouped(
        self, demands: Mapping[Hashable, LlcDemand]
    ) -> dict[Hashable, ContentionPoint]:
        """Like :meth:`resolve` but keyed by an arbitrary identifier."""
        keys = list(demands.keys())
        points = self.resolve([demands[k] for k in keys])
        return dict(zip(keys, points))

    # ------------------------------------------------------------------
    def hot_fraction(self, demand: LlcDemand, co_runners: Sequence[LlcDemand]) -> float:
        """Hot fraction of ``demand`` when co-running with ``co_runners``."""
        pts = self.resolve([demand, *co_runners])
        return pts[0].hot_fraction

    def fits(self, demands: Sequence[LlcDemand]) -> bool:
        """True when the unique aggregate demand fits in the LLC."""
        return self.unique_demand_bytes(demands) <= self.capacity_bytes
