"""Partitioned shared-LLC model (the paper's §6 future-work extension).

"For future work, we believe extending our scheduler with cache
partitioning would be highly beneficial for two reasons.  First, if an
application whose working set size is larger than the LLC is scheduled
(e.g., streaming applications), we can partition the cache and give this
application only a small portion of the cache because it would fetch most
data from main memory regardless.  Second, if an LLC intensive application
that doesn't specify any progress periods is run alongside instrumented
programs, ... allowing the instrumented programs to share a large cache
partition would allow them to use the resource without external
interference."

:class:`PartitionedLlcModel` implements exactly that: demands classified as
*streaming* (low reuse, or a working set larger than the whole cache) are
confined to a small dedicated partition, and everyone else shares the
remainder without interference from the streams.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ResourceError
from .contention import ContentionPoint, LlcDemand, SharedLlcModel

__all__ = ["PartitionedLlcModel"]


class PartitionedLlcModel(SharedLlcModel):
    """Two-partition LLC: a streaming pen plus a protected main partition.

    Args:
        capacity_bytes: total LLC capacity.
        streaming_partition_bytes: size of the partition streams are
            confined to (the "small portion"); the main partition is the
            rest.
        streaming_reuse_threshold: a demand with ``reuse`` at or below this
            is classified as streaming, as is any demand whose working set
            exceeds the total capacity.
        gamma: LRU-cliff exponent, as in :class:`SharedLlcModel`.
    """

    def __init__(
        self,
        capacity_bytes: int,
        streaming_partition_bytes: Optional[int] = None,
        streaming_reuse_threshold: float = 0.15,
        gamma: float = 2.0,
    ) -> None:
        super().__init__(capacity_bytes, gamma=gamma)
        if streaming_partition_bytes is None:
            streaming_partition_bytes = capacity_bytes // 8
        if not 0 < streaming_partition_bytes < capacity_bytes:
            raise ResourceError(
                "streaming partition must be positive and smaller than the LLC"
            )
        if not 0.0 <= streaming_reuse_threshold <= 1.0:
            raise ResourceError("reuse threshold must be in [0, 1]")
        self.streaming_partition_bytes = int(streaming_partition_bytes)
        self.streaming_reuse_threshold = float(streaming_reuse_threshold)

    # ------------------------------------------------------------------
    def is_streaming(self, demand: LlcDemand) -> bool:
        """Classification rule from the paper's §6."""
        return (
            demand.reuse <= self.streaming_reuse_threshold
            or demand.wss_bytes > self.capacity_bytes
        )

    @property
    def main_partition_bytes(self) -> int:
        return self.capacity_bytes - self.streaming_partition_bytes

    def resolve(self, demands: Sequence[LlcDemand]) -> list[ContentionPoint]:
        """Resolve each group inside its own partition.

        Streams contend only with streams inside the small partition; the
        protected demands share the main partition among themselves.
        """
        streaming_idx = [i for i, d in enumerate(demands) if self.is_streaming(d)]
        protected_idx = [i for i, d in enumerate(demands) if not self.is_streaming(d)]
        points: list[Optional[ContentionPoint]] = [None] * len(demands)
        for idx, capacity in (
            (streaming_idx, self.streaming_partition_bytes),
            (protected_idx, self.main_partition_bytes),
        ):
            if not idx:
                continue
            sub = SharedLlcModel(capacity, gamma=self.gamma)
            for i, pt in zip(idx, sub.resolve([demands[i] for i in idx])):
                points[i] = pt
        assert all(p is not None for p in points)
        return points  # type: ignore[return-value]
