"""Footprint, working-set-size and reuse-ratio computation over windows.

Implements the per-window statistics of the paper's preliminary profiler
(section 2.4): within one fixed-size sampling window of instructions, an
array keeps the number of times each unique address is accessed; at the end
of the window

* the **memory footprint** is the number of unique addresses touched,
* the **working-set size** is the number of entries accessed at least a
  pre-configured number of times, and
* the **reuse ratio** is the average access count per entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.progress_period import ReuseLevel

__all__ = ["WindowStats", "window_stats", "reuse_level_of_ratio"]


@dataclass(frozen=True)
class WindowStats:
    """Statistics of one sampling window of memory accesses."""

    n_accesses: int
    footprint_bytes: int
    wss_bytes: int
    reuse_ratio: float

    def similar_to(self, other: "WindowStats", tolerance: float = 0.25) -> bool:
        """Relative similarity used by the period-detection algorithm.

        Two windows are "sufficiently similar" (paper's wording) when both
        working-set size and reuse ratio agree within ``tolerance`` relative
        difference.
        """

        def close(a: float, b: float) -> bool:
            scale = max(abs(a), abs(b), 1.0)
            return abs(a - b) / scale <= tolerance

        return close(self.wss_bytes, other.wss_bytes) and close(
            self.reuse_ratio, other.reuse_ratio
        )


def window_stats(
    addresses: Sequence[int],
    granularity_bytes: int = 64,
    min_accesses: int = 2,
) -> WindowStats:
    """Compute footprint / WSS / reuse ratio of one window of addresses.

    Args:
        addresses: virtual byte addresses of the load/store instructions
            retired in this window.
        granularity_bytes: tracking granularity (cache-line by default, as a
            PIN tool would coalesce accesses to the same line).
        min_accesses: an address counts toward the working set when touched
            at least this many times (the paper's "pre-configured number").
    """
    arr = np.asarray(addresses, dtype=np.int64)
    if arr.size == 0:
        return WindowStats(0, 0, 0, 0.0)
    lines = arr // granularity_bytes
    _, counts = np.unique(lines, return_counts=True)
    footprint = int(counts.size) * granularity_bytes
    wss = int((counts >= min_accesses).sum()) * granularity_bytes
    reuse_ratio = float(counts.mean())
    return WindowStats(
        n_accesses=int(arr.size),
        footprint_bytes=footprint,
        wss_bytes=wss,
        reuse_ratio=reuse_ratio,
    )


def reuse_level_of_ratio(reuse_ratio: float) -> ReuseLevel:
    """Categorize a raw reuse ratio into the paper's low/med/high levels.

    The thresholds mirror the workload taxonomy of Table 2: BLAS-1 streams
    (each line touched about once per sweep) are *low*; BLAS-2 re-touches
    vectors but streams the matrix — *medium*; blocked BLAS-3 re-touches
    blocks many times — *high*.
    """
    if reuse_ratio < 2.0:
        return ReuseLevel.LOW
    if reuse_ratio < 8.0:
        return ReuseLevel.MEDIUM
    return ReuseLevel.HIGH
