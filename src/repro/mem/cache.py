"""Trace-driven set-associative cache simulator.

Used to validate the analytical contention model of
:mod:`repro.mem.contention` and to drive the profiler experiments on
synthetic address traces.  Single-level; :mod:`repro.mem.hierarchy` stacks
several instances into an L1/L2/LLC hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..config import CacheConfig
from .replacement import ReplacementState, make_replacement

__all__ = ["Cache", "CacheStats", "ReplacementPolicy"]

#: accepted replacement policy names
ReplacementPolicy = str


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = self.evictions = 0


class Cache:
    """A set-associative cache over 64-bit byte addresses.

    >>> from repro.config import CacheConfig
    >>> c = Cache(CacheConfig("toy", 4096, line_bytes=64, associativity=2))
    >>> c.access(0)      # cold miss
    False
    >>> c.access(0)      # now resident
    True
    """

    def __init__(
        self,
        config: CacheConfig,
        replacement: ReplacementPolicy = "lru",
        seed: Optional[int] = None,
    ) -> None:
        self.config = config
        self.line_bytes = config.line_bytes
        self.n_sets = config.n_sets
        self.n_ways = config.associativity
        self._line_shift = self.line_bytes.bit_length() - 1
        # tags[set, way]; -1 marks an invalid (empty) way
        self._tags = np.full((self.n_sets, self.n_ways), -1, dtype=np.int64)
        self._repl: ReplacementState = make_replacement(
            replacement, self.n_sets, self.n_ways, seed=seed
        )
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _locate(self, address: int) -> tuple[int, int]:
        """Map a byte address to (set index, tag)."""
        line = address >> self._line_shift
        return line % self.n_sets, line // self.n_sets

    def lookup(self, address: int) -> bool:
        """Check residency without updating any state."""
        set_idx, tag = self._locate(address)
        return bool((self._tags[set_idx] == tag).any())

    def access(self, address: int) -> bool:
        """Access one byte address; fill on miss.  Returns hit (True)/miss."""
        set_idx, tag = self._locate(address)
        ways = self._tags[set_idx]
        hits = np.nonzero(ways == tag)[0]
        self.stats.accesses += 1
        if hits.size:
            way = int(hits[0])
            self._repl.on_access(set_idx, way)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        empty = np.nonzero(ways == -1)[0]
        if empty.size:
            way = int(empty[0])
        else:
            way = self._repl.victim(set_idx)
            self.stats.evictions += 1
        ways[way] = tag
        self._repl.on_access(set_idx, way)
        return False

    def access_trace(self, addresses: Iterable[int]) -> CacheStats:
        """Run a whole trace; returns the (cumulative) stats object."""
        for a in addresses:
            self.access(int(a))
        return self.stats

    # ------------------------------------------------------------------
    def invalidate_all(self) -> None:
        """Flush the cache (keeps statistics)."""
        self._tags.fill(-1)

    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return int((self._tags != -1).sum())

    def resident_bytes(self) -> int:
        """Bytes of data currently held."""
        return self.resident_lines() * self.line_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Cache {self.config.name} {self.config.capacity_bytes}B "
            f"{self.n_sets}x{self.n_ways} hit_rate={self.stats.hit_rate:.3f}>"
        )
