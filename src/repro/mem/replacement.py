"""Replacement policies for the set-associative cache simulator.

Policies operate per cache set.  A policy tracks access order metadata and
answers "which way should be evicted".  They are written so the cache's hot
loop stays allocation-free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

__all__ = ["ReplacementState", "LruState", "FifoState", "RandomState", "make_replacement"]


class ReplacementState(ABC):
    """Per-set replacement metadata for all sets of one cache."""

    def __init__(self, n_sets: int, n_ways: int) -> None:
        self.n_sets = n_sets
        self.n_ways = n_ways

    @abstractmethod
    def on_access(self, set_idx: int, way: int) -> None:
        """Record a hit (or fill) of ``way`` in ``set_idx``."""

    @abstractmethod
    def victim(self, set_idx: int) -> int:
        """Return the way to evict from ``set_idx``."""


class LruState(ReplacementState):
    """True LRU via a per-set monotonically increasing timestamp array."""

    def __init__(self, n_sets: int, n_ways: int) -> None:
        super().__init__(n_sets, n_ways)
        self._stamp = np.zeros((n_sets, n_ways), dtype=np.int64)
        self._clock = 0

    def on_access(self, set_idx: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_idx, way] = self._clock

    def victim(self, set_idx: int) -> int:
        return int(np.argmin(self._stamp[set_idx]))


class FifoState(ReplacementState):
    """First-in first-out: a round-robin fill pointer per set."""

    def __init__(self, n_sets: int, n_ways: int) -> None:
        super().__init__(n_sets, n_ways)
        self._ptr = np.zeros(n_sets, dtype=np.int64)

    def on_access(self, set_idx: int, way: int) -> None:
        # FIFO ignores hits; only fills advance the pointer, handled in victim.
        pass

    def victim(self, set_idx: int) -> int:
        way = int(self._ptr[set_idx])
        self._ptr[set_idx] = (way + 1) % self.n_ways
        return way


class RandomState(ReplacementState):
    """Random replacement with a seeded generator (reproducible)."""

    def __init__(self, n_sets: int, n_ways: int, seed: int = 0) -> None:
        super().__init__(n_sets, n_ways)
        self._rng = np.random.default_rng(seed)

    def on_access(self, set_idx: int, way: int) -> None:
        pass

    def victim(self, set_idx: int) -> int:
        return int(self._rng.integers(self.n_ways))


def make_replacement(
    name: str, n_sets: int, n_ways: int, seed: Optional[int] = None
) -> ReplacementState:
    """Factory: ``"lru"``, ``"fifo"`` or ``"random"``."""
    lowered = name.lower()
    if lowered == "lru":
        return LruState(n_sets, n_ways)
    if lowered == "fifo":
        return FifoState(n_sets, n_ways)
    if lowered == "random":
        return RandomState(n_sets, n_ways, seed=seed or 0)
    raise ValueError(f"unknown replacement policy {name!r}")
