"""Multi-level cache hierarchy (L1D → L2 → shared LLC → DRAM).

Trace-driven counterpart of the analytical model: addresses are pushed
through the levels, and the result records which level serviced the access
and the latency it cost.  Multiple "cores" may front the same shared LLC,
which is how the contention experiments of figure 13 are cross-validated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..config import MachineConfig, default_machine_config
from .cache import Cache

__all__ = ["AccessResult", "CoreCaches", "CacheHierarchy"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory access through the hierarchy."""

    level: str  # "L1", "L2", "LLC" or "DRAM"
    latency_s: float

    @property
    def dram(self) -> bool:
        return self.level == "DRAM"


@dataclass
class HierarchyStats:
    """Per-level access counts for one core's view of the hierarchy."""

    l1_hits: int = 0
    l2_hits: int = 0
    llc_hits: int = 0
    dram_accesses: int = 0

    @property
    def accesses(self) -> int:
        return self.l1_hits + self.l2_hits + self.llc_hits + self.dram_accesses

    @property
    def llc_miss_ratio(self) -> float:
        """Fraction of LLC lookups that went to DRAM."""
        lookups = self.llc_hits + self.dram_accesses
        return self.dram_accesses / lookups if lookups else 0.0


class CoreCaches:
    """The private L1D and L2 of one core."""

    def __init__(self, config: MachineConfig, seed: Optional[int] = None) -> None:
        self.l1 = Cache(config.l1d, seed=seed)
        self.l2 = Cache(config.l2, seed=seed)


class CacheHierarchy:
    """N private L1/L2 pairs in front of one shared LLC.

    >>> h = CacheHierarchy(n_cores=2)
    >>> h.access(core=0, address=0).level
    'DRAM'
    >>> h.access(core=0, address=0).level
    'L1'
    """

    def __init__(
        self,
        n_cores: int = 1,
        config: Optional[MachineConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config or default_machine_config()
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        self.cores = [CoreCaches(self.config, seed=seed) for _ in range(n_cores)]
        self.llc = Cache(self.config.llc, seed=seed)
        self.stats = [HierarchyStats() for _ in range(n_cores)]
        # Per-level outcomes are fixed by the config, so the frozen results
        # (and their cumulative latencies) are built once and shared across
        # every access() call instead of being recomputed per lookup.
        cfg = self.config
        l2_latency = cfg.l1d.latency_s + cfg.l2.latency_s
        llc_latency = l2_latency + cfg.llc.latency_s
        self._hit_l1 = AccessResult("L1", cfg.l1d.latency_s)
        self._hit_l2 = AccessResult("L2", l2_latency)
        self._hit_llc = AccessResult("LLC", llc_latency)
        self._miss_dram = AccessResult("DRAM", llc_latency + cfg.memory.latency_s)

    # ------------------------------------------------------------------
    def access(self, core: int, address: int) -> AccessResult:
        """Push one byte address through core-private levels into the LLC."""
        caches = self.cores[core]
        st = self.stats[core]
        if caches.l1.access(address):
            st.l1_hits += 1
            return self._hit_l1
        if caches.l2.access(address):
            st.l2_hits += 1
            return self._hit_l2
        if self.llc.access(address):
            st.llc_hits += 1
            return self._hit_llc
        st.dram_accesses += 1
        return self._miss_dram

    def access_trace(self, core: int, addresses: Iterable[int]) -> HierarchyStats:
        """Run a trace on one core; returns that core's cumulative stats."""
        for a in addresses:
            self.access(core, int(a))
        return self.stats[core]

    def interleave(self, traces: Sequence[Sequence[int]]) -> list[HierarchyStats]:
        """Round-robin-interleave one trace per core through the hierarchy.

        Models concurrent execution: core *i* issues ``traces[i][k]`` in
        lockstep rounds, which is how co-running processes pressure the
        shared LLC simultaneously.
        """
        if len(traces) > len(self.cores):
            raise ValueError("more traces than cores")
        longest = max((len(t) for t in traces), default=0)
        for k in range(longest):
            for core, trace in enumerate(traces):
                if k < len(trace):
                    self.access(core, int(trace[k]))
        return [self.stats[i] for i in range(len(traces))]

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Invalidate every level (statistics retained)."""
        for c in self.cores:
            c.l1.invalidate_all()
            c.l2.invalidate_all()
        self.llc.invalidate_all()
