"""Memory-trace containers.

A :class:`MemoryTrace` is what the PIN-replacement profiler consumes: the
sequence of virtual addresses touched by load/store instructions, plus the
sampled linear addresses of retired JMP instructions that
:mod:`repro.profiler.loopmap` uses to locate periods in the binary's loop
structure (§2.4: "we sample the linear memory addresses of the JMP
instructions retired within each window").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from ..errors import ProfilerError

__all__ = ["MemoryTrace", "concat_traces"]


@dataclass
class MemoryTrace:
    """Addresses of one modelled execution (or slice of one).

    Attributes:
        addresses: int64 array of byte addresses, one per load/store retired.
        instructions_per_access: how many instructions one access stands
            for; lets the profiler convert its instruction-count window size
            into an access-count window.
        jmp_addresses: instruction addresses of retired JMPs, sampled one
            per ``jmp_sample_stride`` accesses (aligned with ``addresses``).
    """

    addresses: np.ndarray
    instructions_per_access: float = 3.0
    jmp_addresses: Optional[np.ndarray] = None
    jmp_sample_stride: int = 256
    label: str = ""

    def __post_init__(self) -> None:
        self.addresses = np.ascontiguousarray(self.addresses, dtype=np.int64)
        if self.addresses.ndim != 1:
            raise ProfilerError("trace addresses must be one-dimensional")
        if self.instructions_per_access <= 0:
            raise ProfilerError("instructions_per_access must be positive")
        if self.jmp_addresses is not None:
            self.jmp_addresses = np.ascontiguousarray(
                self.jmp_addresses, dtype=np.int64
            )

    def __len__(self) -> int:
        return int(self.addresses.size)

    @property
    def instructions(self) -> float:
        """Instructions this trace slice stands for."""
        return self.addresses.size * self.instructions_per_access

    # ------------------------------------------------------------------
    def window_accesses(self, window_instructions: int) -> int:
        """Convert a window size in instructions to one in accesses."""
        n = int(round(window_instructions / self.instructions_per_access))
        if n <= 0:
            raise ProfilerError(
                f"window of {window_instructions} instructions is smaller "
                f"than one access ({self.instructions_per_access} instr/access)"
            )
        return n

    def windows(self, window_instructions: int) -> Iterator[np.ndarray]:
        """Yield consecutive fixed-size windows of addresses.

        The trailing partial window is dropped, as a fixed-size sampling
        profiler would only report completed windows.
        """
        step = self.window_accesses(window_instructions)
        for start in range(0, len(self) - step + 1, step):
            yield self.addresses[start : start + step]

    def jmps_in_window(self, window_idx: int, window_instructions: int) -> np.ndarray:
        """JMP samples retired within one window."""
        if self.jmp_addresses is None:
            return np.empty(0, dtype=np.int64)
        step = self.window_accesses(window_instructions)
        lo = window_idx * step // self.jmp_sample_stride
        hi = (window_idx + 1) * step // self.jmp_sample_stride
        return self.jmp_addresses[lo:hi]


def concat_traces(traces: Sequence[MemoryTrace], label: str = "") -> MemoryTrace:
    """Concatenate trace slices (e.g. the stages of one timestep)."""
    if not traces:
        raise ProfilerError("cannot concatenate zero traces")
    ipa = traces[0].instructions_per_access
    for t in traces:
        if t.instructions_per_access != ipa:
            raise ProfilerError("traces disagree on instructions_per_access")
    jmps = [t.jmp_addresses for t in traces]
    cat_jmps = (
        np.concatenate([j for j in jmps if j is not None])
        if any(j is not None for j in jmps)
        else None
    )
    return MemoryTrace(
        addresses=np.concatenate([t.addresses for t in traces]),
        instructions_per_access=ipa,
        jmp_addresses=cat_jmps,
        jmp_sample_stride=traces[0].jmp_sample_stride,
        label=label or "+".join(t.label for t in traces if t.label),
    )
