"""Shared argparse value validators.

Several subcommands (``serve``, ``loadgen``, ``chaos``, ``bench`` and the
``--predict-*`` family) take strictly-positive numeric flags; the
validators live here so each front-end stops re-declaring them.
"""

from __future__ import annotations

import argparse

__all__ = ["positive_float", "positive_int"]


def positive_float(text: str) -> float:
    """Argparse type: a strictly positive float."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {text!r}")
    return value


def positive_int(text: str) -> int:
    """Argparse type: a strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {text!r}")
    return value
