"""Command-line interface: run the paper's experiments from a shell.

Usage (after ``pip install -e .``)::

    python -m repro table1                 # machine configuration
    python -m repro table2                 # workload inventory
    python -m repro run Water_nsq --policy strict
    python -m repro sweep                  # figures 7-10 (all workloads)
    python -m repro fig 11                 # any of figures 1, 11, 12, 13
    python -m repro serve --policy strict --socket /tmp/rda.sock
    python -m repro loadgen --socket /tmp/rda.sock --workload Water_nsq
    python -m repro chaos --kills 2 --duration 6
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .cliutil import positive_float, positive_int
from .core.policy import CompromisePolicy, SchedulingPolicy, StrictPolicy
from .errors import ReproError
from .experiments import figures, report
from .experiments.parallel import DEFAULT_CACHE_DIR
from .experiments.runner import run_policies, run_workload
from .workloads.suite import WORKLOAD_NAMES, workload_by_name

__all__ = ["main", "build_parser", "policy_by_name"]


def policy_by_name(name: str) -> Optional[SchedulingPolicy]:
    """Map a CLI policy name to a policy object (None = Linux default)."""
    lowered = name.lower()
    if lowered in ("default", "linux", "none"):
        return None
    if lowered == "strict":
        return StrictPolicy()
    if lowered.startswith("compromise"):
        # "compromise" or "compromise:1.5"
        if ":" in lowered:
            factor = float(lowered.split(":", 1)[1])
            return CompromisePolicy(oversubscription=factor)
        return CompromisePolicy()
    raise argparse.ArgumentTypeError(
        f"unknown policy {name!r}; expected default, strict or compromise[:x]"
    )


# Shared validators (repro.cliutil); the underscore aliases keep the
# historical names used throughout this module.
_positive_float = positive_float
_positive_int = positive_int


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Demand-aware process scheduling (ICPP 2018) — experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the machine configuration (Table 1)")
    sub.add_parser("table2", help="print the workload inventory (Table 2)")

    run_p = sub.add_parser("run", help="run one workload under one policy")
    run_p.add_argument("workload", choices=WORKLOAD_NAMES)
    run_p.add_argument(
        "--policy", type=policy_by_name, default=None,
        help="default | strict | compromise[:factor]",
    )
    run_p.add_argument(
        "--sanitize", action="store_true",
        help="run under the kernel sanitizer (fails on invariant violations)",
    )

    san_p = sub.add_parser(
        "sanitize",
        help="fuzz the scheduler with randomized adversarial workloads "
        "under the runtime invariant checker",
    )
    san_p.add_argument("--seed", type=int, default=0, help="base seed")
    san_p.add_argument(
        "--runs", type=int, default=200, help="number of fuzz cases"
    )
    san_p.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop starting new cases after this much wall-clock time",
    )
    san_p.add_argument(
        "--configs", nargs="*", default=None,
        help="policy configs to fuzz (default: all shipped configs)",
    )
    san_p.add_argument(
        "-v", "--verbose", action="store_true", help="print per-case progress"
    )
    san_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the fuzz campaign (default 1 = serial; "
        "the simulations run are identical for any N)",
    )
    san_p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-simulation wall-clock budget (--jobs >= 2 only); a hung "
        "case becomes a campaign failure instead of a stall",
    )
    san_p.add_argument(
        "--progress", action="store_true",
        help="print one line per settled simulation (alias of --verbose)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the admission controller as a long-lived service "
        "(NDJSON over a unix socket and/or TCP)",
    )
    serve_p.add_argument(
        "--socket", default=None, metavar="PATH",
        help="unix socket path (default 'repro-serve.sock' when no --host)",
    )
    serve_p.add_argument("--host", default=None, help="TCP bind address")
    serve_p.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = ephemeral)"
    )
    serve_p.add_argument(
        "--policy", type=policy_by_name, default=None,
        help="default | strict | compromise[:factor]",
    )
    serve_p.add_argument(
        "--fifo", action="store_true",
        help="strict arrival-order waitlist draining (head-of-line blocking)",
    )
    serve_p.add_argument(
        "--capacity-mb", type=float, default=None, metavar="MB",
        help="override the managed LLC capacity (default: Table 1 machine)",
    )
    serve_p.add_argument(
        "--max-pending", type=int, default=1024, metavar="N",
        help="parked-admission bound; beyond it pp_begin gets RETRY_AFTER",
    )
    serve_p.add_argument(
        "--park-timeout", type=float, default=30.0, metavar="SECONDS",
        help="how long one client may stay parked before a TIMEOUT reply",
    )
    serve_p.add_argument(
        "--park-deadline", type=_positive_float, default=None,
        metavar="SECONDS",
        help="queue-sojourn bound on parked admissions: past it the period "
        "is cancelled with PARK_TIMEOUT and a retry hint (default: off)",
    )
    serve_p.add_argument(
        "--retry-hint-floor", type=_positive_float, default=None,
        metavar="SECONDS",
        help="with --retry-hint-cap, scale RETRY_AFTER hints from live "
        "queue occupancy and admission latency, clamped to "
        "[floor, cap] (default: the constant 0.5 s hint)",
    )
    serve_p.add_argument(
        "--retry-hint-cap", type=_positive_float, default=None,
        metavar="SECONDS",
        help="upper clamp for adaptive RETRY_AFTER hints (needs "
        "--retry-hint-floor)",
    )
    serve_p.add_argument(
        "--max-pending-per-client", type=_positive_int, default=None,
        metavar="N",
        help="per-client parked-admission quota; beyond it pp_begin gets "
        "RETRY_AFTER even while the global queue has room (default: off)",
    )
    serve_p.add_argument(
        "--write-timeout", type=_positive_float, default=None,
        metavar="SECONDS",
        help="disconnect a session whose reply write stalls this long "
        "(slow-consumer defense; default: wait forever)",
    )
    serve_p.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="disconnect a client idle this long (default: never)",
    )
    serve_p.add_argument(
        "--drain-grace", type=float, default=5.0, metavar="SECONDS",
        help="drain waits this long for running periods before closing",
    )
    serve_p.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="periodically dump the live metrics snapshot to this file",
    )
    serve_p.add_argument(
        "--metrics-interval", type=float, default=2.0, metavar="SECONDS",
    )
    serve_p.add_argument(
        "--sanitize", action="store_true",
        help="attach the online invariant checker; exit 1 on any violation",
    )
    serve_p.add_argument(
        "--journal", default=None, metavar="PATH",
        help="crash-safe admission journal; replayed on startup so admitted "
        "periods survive a server crash",
    )
    serve_p.add_argument(
        "--journal-fsync", type=float, default=0.0, metavar="SECONDS",
        help="fsync batching window for the journal (0 = fsync per event)",
    )
    serve_p.add_argument(
        "--journal-compact-every", type=int, default=1000, metavar="N",
        help="compact the journal after this many appended events",
    )
    serve_p.add_argument(
        "--lease-ttl", type=float, default=10.0, metavar="SECONDS",
        help="client lease time-to-live; a silent client's periods are "
        "reclaimed after this",
    )
    serve_p.add_argument(
        "--lease-check", type=float, default=0.25, metavar="SECONDS",
        help="lease reaper sweep interval",
    )
    serve_p.add_argument(
        "--predict", action="store_true",
        help="online demand prediction + elastic re-admission: admit on "
        "max(predicted, floor) once the per-key estimator is confident, "
        "detect mispredictions at close and resize running reservations "
        "(default: off — admission is byte-identical without it)",
    )
    serve_p.add_argument(
        "--predict-error-band", type=positive_float, default=0.25,
        metavar="FRACTION",
        help="relative-error band beyond which a close counts as a "
        "misprediction (default 0.25)",
    )
    serve_p.add_argument(
        "--predict-min-samples", type=positive_int, default=3, metavar="N",
        help="observations per (client, key) before the estimator may "
        "override the declared demand (default 3)",
    )
    serve_p.add_argument(
        "--predict-history", type=positive_int, default=32, metavar="N",
        help="demand samples retained per key (default 32)",
    )
    serve_p.add_argument(
        "--predict-hysteresis", type=positive_int, default=2, metavar="N",
        help="consecutive same-direction mispredictions before an elastic "
        "resize (default 2)",
    )
    serve_p.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="run N admission shards behind a demand-aware placer "
        "front-end on --socket (shard i listens on <socket>.shard<i>; "
        "capacity/journal options apply per shard)",
    )
    serve_p.add_argument(
        "--placer-seed", type=int, default=0, metavar="SEED",
        help="tie-break seed of the cluster placer (with --shards > 1)",
    )
    serve_p.add_argument(
        "--rebalance-fragmentation", type=_positive_float, default=0.5,
        metavar="RATIO",
        help="with --shards > 1: trigger proactive parked-client rebalance "
        "when free-capacity fragmentation reaches this ratio (default 0.5)",
    )
    serve_p.add_argument(
        "--no-supervise", action="store_true",
        help="with --shards > 1: do not auto-restart dead shards from "
        "their journals",
    )

    place_p = sub.add_parser(
        "place",
        help="run a demand-aware placer front-end over already-running "
        "admission shards",
    )
    place_p.add_argument(
        "--socket", default="repro-place.sock", metavar="PATH",
        help="unix socket the front-end listens on",
    )
    place_p.add_argument(
        "--shard", action="append", default=[], metavar="NAME=ADDR",
        help="one shard as name=unix-socket-path or name=host:port "
        "(repeatable; at least one required)",
    )
    place_p.add_argument("--seed", type=int, default=0)
    place_p.add_argument(
        "--no-migration", action="store_true",
        help="disable parked-client migration between shards",
    )
    place_p.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="periodically dump the placer metrics snapshot to this file",
    )

    load_p = sub.add_parser(
        "loadgen", help="drive a running admission server with replayed load"
    )
    load_p.add_argument(
        "--socket", default=None, metavar="PATH", help="server unix socket"
    )
    load_p.add_argument("--host", default=None, help="server TCP address")
    load_p.add_argument("--port", type=int, default=None, help="server TCP port")
    load_p.add_argument(
        "--workload", default="fig4",
        help="suite workload to replay, or 'fig4' for the synthetic "
        f"single-period sessions (suite: {', '.join(WORKLOAD_NAMES)})",
    )
    load_p.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="closed = N persistent clients; open = Poisson arrivals",
    )
    load_p.add_argument(
        "--clients", type=int, default=4, help="closed loop: concurrent clients"
    )
    load_p.add_argument(
        "--rate", type=float, default=20.0,
        help="open loop: mean session arrivals per second",
    )
    load_p.add_argument(
        "--sessions", type=int, default=None,
        help="total sessions to run (default: bounded by --duration)",
    )
    load_p.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="stop starting new sessions after this much wall time",
    )
    load_p.add_argument(
        "--time-scale", type=float, default=None,
        help="multiply scripted hold times (default 1e-4 for suite "
        "workloads, 1.0 for fig4)",
    )
    load_p.add_argument("--seed", type=int, default=0)
    load_p.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    load_p.add_argument(
        "--drain", action="store_true",
        help="ask the server to drain once the run finishes",
    )
    load_p.add_argument(
        "--resilient", action="store_true",
        help="use lease-bound resilient clients that survive server "
        "restarts and flaky transports",
    )
    load_p.add_argument(
        "--binary", action="store_true",
        help="negotiate the length-prefixed binary framing in each "
        "client's hello (resilient clients re-negotiate on reconnect)",
    )
    load_p.add_argument(
        "--cluster", action="store_true",
        help="target is a placer front-end: use resilient clients that "
        "follow REDIRECT replies to their assigned shard",
    )
    load_p.add_argument(
        "--overdeclare", type=positive_float, default=1.0, metavar="FACTOR",
        help="declare each call's demand at this multiple of the scripted "
        "working set (models annotation error; default 1.0 = honest)",
    )
    load_p.add_argument(
        "--observe", action="store_true",
        help="report the scripted (true) working set as observed_bytes on "
        "every pp_end, feeding a serve --predict estimator",
    )
    _add_resilient_client_options(load_p)

    chaos_p = sub.add_parser(
        "chaos",
        help="fault-injection campaign: kill and restart a journaled server "
        "under load through a frame-mangling proxy, then verify recovery",
    )
    chaos_p.add_argument("--seed", type=int, default=0)
    chaos_p.add_argument(
        "--duration", type=float, default=6.0, metavar="SECONDS",
        help="load phase wall-clock budget",
    )
    chaos_p.add_argument(
        "--clients", type=int, default=4, help="concurrent resilient clients"
    )
    chaos_p.add_argument(
        "--kills", type=int, default=2,
        help="SIGKILL/restart cycles during the load",
    )
    chaos_p.add_argument(
        "--kill-interval", type=float, default=1.5, metavar="SECONDS",
        help="gap between kills",
    )
    chaos_p.add_argument(
        "--policy", default="strict",
        help="admission policy name passed to the server (default strict)",
    )
    chaos_p.add_argument(
        "--capacity-mb", type=float, default=8.0, metavar="MB",
        help="managed LLC capacity of the chaos server",
    )
    chaos_p.add_argument(
        "--lease-ttl", type=float, default=1.5, metavar="SECONDS",
        help="client lease time-to-live on the chaos server",
    )
    chaos_p.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="directory for sockets and the journal (default: a temp dir)",
    )
    chaos_p.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    chaos_p.add_argument(
        "--cluster", action="store_true",
        help="cluster campaign: SIGKILL/restart individual admission "
        "shards behind a placer front-end instead of the single server",
    )
    chaos_p.add_argument(
        "--shards", type=int, default=3, metavar="N",
        help="shard count for --cluster / --rolling (default 3)",
    )
    chaos_p.add_argument(
        "--supervise", action="store_true",
        help="--cluster: let the front-end supervisor restart killed "
        "shards from their journals instead of the harness",
    )
    chaos_p.add_argument(
        "--rolling", action="store_true",
        help="rolling-restart campaign: drain and restart every shard of "
        "a supervised cluster under live load, asserting zero lost periods",
    )
    chaos_p.add_argument(
        "--rolling-grace", type=_positive_float, default=3.0,
        metavar="SECONDS",
        help="--rolling: per-shard drain grace before a forced restart "
        "(default 3.0)",
    )
    chaos_p.add_argument(
        "--overload", action="store_true",
        help="overload campaign: open-loop arrival storm plus slow "
        "consumers against a server with the overload defenses armed "
        "(adaptive retry hints, park deadlines, quotas, write budget)",
    )
    chaos_p.add_argument(
        "--storm-rate", type=_positive_float, default=150.0, metavar="RATE",
        help="--overload: mean session arrivals per second (default 150)",
    )
    chaos_p.add_argument(
        "--slowloris", type=int, default=2, metavar="N",
        help="--overload: concurrent slow consumers that never read "
        "replies (default 2)",
    )
    chaos_p.add_argument(
        "--p99-bound", type=_positive_float, default=5.0, metavar="SECONDS",
        help="--overload: admitted calls must keep p99 admission latency "
        "under this (default 5.0)",
    )
    _add_resilient_client_options(chaos_p)

    sweep_p = sub.add_parser(
        "sweep", help="figures 7-10: every workload under every policy"
    )
    sweep_p.add_argument(
        "--workloads", nargs="*", choices=WORKLOAD_NAMES, default=WORKLOAD_NAMES,
    )
    sweep_p.add_argument(
        "--chart", action="store_true", help="render bar charts instead of tables"
    )
    _add_grid_options(sweep_p)

    bench_p = sub.add_parser(
        "bench", help="run the performance benchmark harness (BENCH_*.json)"
    )
    bench_p.add_argument(
        "--quick", action="store_true",
        help="time each workload once instead of best-of-3 (CI smoke mode)",
    )
    bench_p.add_argument(
        "--seed", type=int, default=1234, help="workload RNG seed (default 1234)"
    )
    bench_p.add_argument(
        "--out-dir", default=".", metavar="DIR",
        help="where BENCH_*.json files are written (default: repo root)",
    )
    bench_p.add_argument(
        "--areas", nargs="*",
        choices=(
            "sim", "serve", "fleet", "cluster", "serve_overload",
            "serve_predict",
        ),
        default=(
            "sim", "serve", "fleet", "cluster", "serve_overload",
            "serve_predict",
        ),
        help="benchmark areas to run (default: all)",
    )
    bench_p.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"fleet result cache directory (default {DEFAULT_CACHE_DIR!r})",
    )
    bench_p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fleet worker processes (default: serial)",
    )
    bench_p.add_argument(
        "--compare-to", default=None, metavar="DIR",
        help="directory holding baseline BENCH_*.json files; exit 1 on any "
        "metric regressing beyond --tolerance",
    )
    bench_p.add_argument(
        "--tolerance", type=float, default=0.30, metavar="FRACTION",
        help="allowed relative regression for gated metrics (default 0.30)",
    )

    fig_p = sub.add_parser("fig", help="regenerate one figure")
    fig_p.add_argument("number", type=int, choices=(1, 11, 12, 13))
    fig_p.add_argument(
        "--chart", action="store_true", help="render a chart instead of a table"
    )
    _add_grid_options(fig_p)

    return parser


def _add_resilient_client_options(parser: argparse.ArgumentParser) -> None:
    """Resilient-client tuning shared by ``loadgen`` and ``chaos``."""
    parser.add_argument(
        "--backoff-cap", type=_positive_float, default=None,
        metavar="SECONDS",
        help="resilient clients: transport-retry backoff ceiling "
        "(default: the client's own 1.0 s)",
    )
    parser.add_argument(
        "--breaker-threshold", type=_positive_int, default=None, metavar="N",
        help="resilient clients: open the circuit breaker after N "
        "consecutive connect failures (default: breaker disabled)",
    )
    parser.add_argument(
        "--breaker-reset", type=_positive_float, default=None,
        metavar="SECONDS",
        help="resilient clients: breaker reset window before the "
        "half-open probe (default 1.0, or 0.2 under chaos --overload)",
    )


def _add_grid_options(parser: argparse.ArgumentParser) -> None:
    """Parallel-fleet options shared by the grid-shaped commands."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the experiment grid (default 1 = serial; "
        "results are identical for any N)",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"result cache directory (default {DEFAULT_CACHE_DIR!r})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every run; neither read nor write the cache",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock budget (--jobs >= 2 only); an overrunning "
        "run becomes a failure record instead of stalling the grid",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print one line per completed run with a running ETA",
    )


class _GridTracker:
    """Collect grid counters (and optionally echo per-run progress)."""

    def __init__(self, echo: bool) -> None:
        self.echo = echo
        self.total = self.executed = self.cached = self.failed = 0

    def __call__(self, event) -> None:
        from .experiments.parallel import print_progress

        self.total = event.total
        self.executed = event.executed
        self.cached = event.cached
        self.failed = event.failed
        if self.echo:
            print_progress(event)

    def summary(self) -> str:
        return (
            f"# grid: {self.total} runs — {self.executed} executed, "
            f"{self.cached} cached, {self.failed} failed"
        )


def _cmd_run(args) -> int:
    workload = workload_by_name(args.workload)
    rep = run_workload(workload, args.policy, sanitize=args.sanitize)
    policy_name = args.policy.name if args.policy else "Linux Default"
    print(f"# {args.workload} under {policy_name}")
    print(rep.describe())
    if args.sanitize:
        print("sanitizer: 0 violations")
    return 0


def _cmd_sanitize(args) -> int:
    from .sanitizer import FUZZ_CONFIGS, run_fuzz

    names = [c[0] for c in FUZZ_CONFIGS]
    if args.configs:
        unknown = [c for c in args.configs if c not in names]
        if unknown:
            print(f"unknown config(s) {unknown}; available: {names}")
            return 2

    progress = None
    if args.verbose or args.progress:
        def progress(run, outcome):
            status = "ok" if outcome.ok else "FAIL"
            print(
                f"run {run} seed={outcome.seed} config={outcome.config:<16}"
                f" events={outcome.events:<7} {status}",
                flush=True,
            )

    report = run_fuzz(
        seed=args.seed,
        runs=args.runs,
        time_budget_s=args.time_budget,
        configs=args.configs or None,
        progress=progress,
        jobs=args.jobs,
        timeout_s=args.timeout,
    )
    print(report.describe())
    return 0 if report.ok else 1


def _machine_with_capacity(capacity_mb: Optional[float]):
    """The Table-1 machine, optionally with an overridden LLC capacity."""
    from dataclasses import replace

    from .config import default_machine_config

    machine = default_machine_config()
    if capacity_mb is None:
        return machine
    # capacity must stay a whole number of sets x ways
    quantum = machine.llc.line_bytes * machine.llc.associativity
    capacity = max(quantum, int(capacity_mb * 1024 * 1024) // quantum * quantum)
    return replace(machine, llc=replace(machine.llc, capacity_bytes=capacity))


def _cmd_serve(args) -> int:
    import asyncio

    from .serve import ServeConfig, serve_until_drained

    socket_path = args.socket
    if socket_path is None and args.host is None:
        socket_path = "repro-serve.sock"
    cfg = ServeConfig(
        policy=args.policy,
        machine=_machine_with_capacity(args.capacity_mb),
        strict_fifo=args.fifo,
        max_pending=args.max_pending,
        park_timeout_s=args.park_timeout,
        park_deadline_s=args.park_deadline,
        retry_hint_floor_s=args.retry_hint_floor,
        retry_hint_cap_s=args.retry_hint_cap,
        max_pending_per_client=args.max_pending_per_client,
        write_timeout_s=args.write_timeout,
        idle_timeout_s=args.idle_timeout,
        drain_grace_s=args.drain_grace,
        sanitize=args.sanitize,
        metrics_json=args.metrics_json,
        metrics_interval_s=args.metrics_interval,
        journal_path=args.journal,
        journal_fsync_s=args.journal_fsync,
        journal_compact_every=args.journal_compact_every,
        lease_ttl_s=args.lease_ttl,
        lease_check_s=args.lease_check,
        predict=args.predict,
        predict_error_band=args.predict_error_band,
        predict_min_samples=args.predict_min_samples,
        predict_history=args.predict_history,
        predict_hysteresis=args.predict_hysteresis,
    )

    async def run() -> int:
        from .serve.server import AdmissionServer

        server = AdmissionServer(cfg)
        await server.start(
            unix_path=socket_path, host=args.host,
            port=args.port if args.host is not None else None,
        )
        server.install_signal_handlers()
        policy_name = cfg.policy.name if cfg.policy else "Always Admit"
        where = []
        if socket_path:
            where.append(f"unix:{socket_path}")
        if args.host is not None:
            where.append(f"tcp:{args.host}:{server.tcp_port}")
        print(
            f"# serving admission control ({policy_name}, "
            f"LLC {cfg.machine.llc_capacity / (1024 * 1024):.1f} MiB) "
            f"on {' and '.join(where)}",
            flush=True,
        )
        if server.service.replayed_periods:
            print(
                f"# journal replay: {server.service.replayed_periods} "
                "admitted period(s) restored",
                flush=True,
            )
        await server.run_until_drained()
        sanitizer = server.service.sanitizer
        if sanitizer is not None:
            print(sanitizer.summary())
            return 0 if sanitizer.ok else 1
        return 0

    async def run_cluster() -> int:
        from .serve.cluster import start_local_cluster

        cluster = await start_local_cluster(
            cfg, args.shards, socket_path, seed=args.placer_seed,
            cluster_overrides={
                "rebalance_fragmentation": args.rebalance_fragmentation,
            },
            supervise=not args.no_supervise,
        )
        cluster.install_signal_handlers()
        policy_name = cfg.policy.name if cfg.policy else "Always Admit"
        print(
            f"# serving clustered admission control ({policy_name}, "
            f"{args.shards} shard(s) x "
            f"LLC {cfg.machine.llc_capacity / (1024 * 1024):.1f} MiB) "
            f"on unix:{socket_path}",
            flush=True,
        )
        return await cluster.run_until_drained()

    if args.shards > 1:
        if socket_path is None:
            print(
                "serve: --shards needs --socket (shards listen on "
                "<socket>.shard<i>)", file=sys.stderr,
            )
            return 2
        return asyncio.run(run_cluster())
    return asyncio.run(run())


def _parse_shard_spec(spec: str):
    """``name=unix-path`` or ``name=host:port`` into a ShardAddress."""
    from .serve.placer import ShardAddress

    name, sep, addr = spec.partition("=")
    if not sep or not name or not addr:
        raise ValueError(f"bad shard spec {spec!r}: expected name=addr")
    host, sep, port = addr.rpartition(":")
    if sep and port.isdigit() and "/" not in addr:
        return ShardAddress(name=name, host=host, port=int(port))
    return ShardAddress(name=name, unix_path=addr)


def _cmd_place(args) -> int:
    import asyncio

    from .serve.cluster import ClusterConfig, ClusterFrontend

    try:
        shards = tuple(_parse_shard_spec(spec) for spec in args.shard)
    except ValueError as exc:
        print(f"place: {exc}", file=sys.stderr)
        return 2
    if not shards:
        print("place: need at least one --shard name=addr", file=sys.stderr)
        return 2
    cfg = ClusterConfig(
        shards=shards,
        seed=args.seed,
        migration=not args.no_migration,
        metrics_json=args.metrics_json,
    )

    async def run() -> int:
        frontend = ClusterFrontend(cfg)
        await frontend.start(unix_path=args.socket)
        frontend.install_signal_handlers()
        print(
            f"# placing over {len(shards)} shard(s) "
            f"({', '.join(s.describe() for s in shards)}) "
            f"on unix:{args.socket}",
            flush=True,
        )
        await frontend.run_until_drained()
        return 0

    return asyncio.run(run())


def _cmd_loadgen(args) -> int:
    import json as json_mod

    from .serve import LoadgenConfig, fig4_scripts, run_loadgen_sync
    from .workloads.export import export_pp_sequences

    if args.socket is None and args.host is None:
        print("loadgen: need --socket or --host/--port", file=sys.stderr)
        return 2
    if args.workload == "fig4":
        scripts = fig4_scripts(n=8)
        time_scale = args.time_scale if args.time_scale is not None else 1.0
    else:
        if args.workload not in WORKLOAD_NAMES:
            print(
                f"unknown workload {args.workload!r}; expected 'fig4' or one "
                f"of {', '.join(WORKLOAD_NAMES)}",
                file=sys.stderr,
            )
            return 2
        scripts = export_pp_sequences(workload_by_name(args.workload))
        time_scale = args.time_scale if args.time_scale is not None else 1e-4
    sessions = args.sessions
    if sessions is None and args.duration is None:
        sessions = len(scripts)
    cfg = LoadgenConfig(
        mode=args.mode,
        clients=args.clients,
        rate=args.rate,
        sessions=sessions,
        duration_s=args.duration,
        time_scale=time_scale,
        drain=args.drain,
        resilient=args.resilient,
        binary=args.binary,
        cluster=args.cluster,
        client_backoff_cap_s=args.backoff_cap,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=(
            args.breaker_reset if args.breaker_reset is not None else 1.0
        ),
        overdeclare=args.overdeclare,
        report_observed=args.observe,
        seed=args.seed,
    )
    try:
        report = run_loadgen_sync(
            scripts, cfg, unix_path=args.socket, host=args.host, port=args.port
        )
    except (ReproError, OSError) as exc:
        print(f"loadgen: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json_mod.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.describe())
    return 0 if report.protocol_errors == 0 else 1


def _cmd_chaos(args) -> int:
    import json as json_mod
    import tempfile

    from .serve.chaos import (
        ChaosConfig, run_chaos_sync, run_cluster_chaos_sync,
        run_overload_chaos_sync, run_rolling_chaos_sync,
    )

    exclusive = [
        flag for flag in ("overload", "cluster", "rolling")
        if getattr(args, flag)
    ]
    if len(exclusive) > 1:
        print(
            "chaos: --" + " and --".join(exclusive) + " are mutually "
            "exclusive", file=sys.stderr,
        )
        return 2
    if args.supervise and not args.cluster:
        print("chaos: --supervise needs --cluster", file=sys.stderr)
        return 2
    cfg = ChaosConfig(
        seed=args.seed,
        duration_s=args.duration,
        clients=args.clients,
        kills=args.kills,
        kill_interval_s=args.kill_interval,
        policy=args.policy,
        capacity_mb=args.capacity_mb,
        lease_ttl_s=args.lease_ttl,
        shards=args.shards if (args.cluster or args.rolling) else 0,
        supervise=args.supervise,
        rolling_grace_s=args.rolling_grace,
        storm_rate=args.storm_rate,
        slowloris=args.slowloris,
        p99_bound_s=args.p99_bound,
        backoff_cap_s=args.backoff_cap,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=(
            args.breaker_reset if args.breaker_reset is not None else 0.2
        ),
    )
    if args.overload:
        campaign = run_overload_chaos_sync
    elif args.rolling:
        campaign = run_rolling_chaos_sync
    elif args.cluster:
        campaign = run_cluster_chaos_sync
    else:
        campaign = run_chaos_sync
    try:
        if args.workdir is not None:
            report = campaign(cfg, args.workdir)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
                report = campaign(cfg, workdir)
    except (ReproError, OSError) as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json_mod.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.describe())
    return 0 if report.ok else 1


def _cmd_sweep(args) -> int:
    from .experiments.charts import grouped_bar_chart

    tracker = _GridTracker(echo=args.progress)
    try:
        sweep = figures.figures7to10(
            args.workloads,
            jobs=args.jobs,
            cache=None if args.no_cache else args.cache_dir,
            timeout_s=args.timeout,
            progress=tracker,
        )
    except ReproError as exc:
        print(tracker.summary())
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    if args.chart:
        for metric, title, unit in (
            ("system_j", "Figure 7: system energy", "J"),
            ("dram_j", "Figure 8: DRAM energy", "J"),
            ("gflops", "Figure 9: performance", "GFLOPS"),
            ("gflops_per_watt", "Figure 10: efficiency", "GFLOPS/W"),
        ):
            groups = {
                wl: {p: getattr(r, metric) for p, r in reports.items()}
                for wl, reports in sweep.items()
            }
            print(grouped_bar_chart(groups, title=title, unit=unit))
            print()
    else:
        for renderer in (
            report.render_figure7,
            report.render_figure8,
            report.render_figure9,
            report.render_figure10,
        ):
            print(renderer(sweep))
            print()
    print(report.render_comparison_summary(sweep))
    print(tracker.summary())
    return 0


def _cmd_bench(args) -> int:
    from .bench import BenchError, BenchOptions, run_bench

    opts = BenchOptions(
        quick=args.quick,
        seed=args.seed,
        out_dir=args.out_dir,
        areas=args.areas,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        compare_to=args.compare_to,
        tolerance=args.tolerance,
    )
    try:
        return run_bench(opts)
    except BenchError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2


def _cmd_fig(args) -> int:
    from .experiments.charts import bar_chart, line_chart

    chart = getattr(args, "chart", False)
    tracker = _GridTracker(echo=args.progress)
    grid_kwargs = dict(
        jobs=args.jobs,
        cache=None if args.no_cache else args.cache_dir,
        timeout_s=args.timeout,
        progress=tracker,
    )
    if args.number == 1:
        points = figures.figure1_timeline(
            jobs=args.jobs, cache=None if args.no_cache else args.cache_dir
        )
        if chart:
            print(bar_chart(
                {n: p.wall_s * 1e3 for n, p in points.items()},
                title="Figure 1: wall time of two conflicting processes",
                unit="ms",
            ))
        else:
            for name, p in points.items():
                print(
                    f"{name:<16} wall {p.wall_s * 1e3:7.1f} ms  "
                    f"LLC misses {p.llc_misses:9.3e}  switches "
                    f"{int(p.context_switches)}"
                )
    elif args.number == 11:
        reports = figures.figure11_overhead(**grid_kwargs)
        if chart:
            print(bar_chart(
                {k: r.gflops for k, r in reports.items()},
                title="Figure 11: dgemm GFLOPS vs tracking granularity",
                unit="GFLOPS",
            ))
        else:
            print(report.render_figure11(reports))
    elif args.number == 12:
        curves = figures.figure12_wss_prediction()
        if chart:
            series = {
                c.name: list(zip(c.input_sizes, c.measured_mb)) for c in curves
            }
            print(line_chart(
                series,
                title="Figure 12: measured WSS (MB) vs input size",
                x_label="input size",
                y_label="WSS (MB)",
                logx=True,
            ))
        else:
            print(report.render_figure12(curves))
    elif args.number == 13:
        grid = figures.figure13_interference(**grid_kwargs)
        if chart:
            series = {
                f"n={n}": [(i, g) for i, g in row.items()]
                for n, row in grid.items()
            }
            print(line_chart(
                series,
                title="Figure 13: GFLOPS vs concurrent instances",
                x_label="instances",
                y_label="GFLOPS",
            ))
        else:
            print(report.render_figure13(grid))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        print(figures.table1_machine())
        return 0
    if args.command == "table2":
        for row in figures.table2_rows():
            print(
                f"{row['workload']:<10} procs={row['n_processes']:<3} "
                f"thr/proc={row['threads_per_proc']}  wss={row['wss_mb']} MB  "
                f"reuse={row['reuses']}"
            )
        return 0
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sanitize":
        return _cmd_sanitize(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "place":
        return _cmd_place(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "fig":
        return _cmd_fig(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
