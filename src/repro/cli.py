"""Command-line interface: run the paper's experiments from a shell.

Usage (after ``pip install -e .``)::

    python -m repro table1                 # machine configuration
    python -m repro table2                 # workload inventory
    python -m repro run Water_nsq --policy strict
    python -m repro sweep                  # figures 7-10 (all workloads)
    python -m repro fig 11                 # any of figures 1, 11, 12, 13
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core.policy import CompromisePolicy, SchedulingPolicy, StrictPolicy
from .errors import ReproError
from .experiments import figures, report
from .experiments.parallel import DEFAULT_CACHE_DIR
from .experiments.runner import run_policies, run_workload
from .workloads.suite import WORKLOAD_NAMES, workload_by_name

__all__ = ["main", "build_parser", "policy_by_name"]


def policy_by_name(name: str) -> Optional[SchedulingPolicy]:
    """Map a CLI policy name to a policy object (None = Linux default)."""
    lowered = name.lower()
    if lowered in ("default", "linux", "none"):
        return None
    if lowered == "strict":
        return StrictPolicy()
    if lowered.startswith("compromise"):
        # "compromise" or "compromise:1.5"
        if ":" in lowered:
            factor = float(lowered.split(":", 1)[1])
            return CompromisePolicy(oversubscription=factor)
        return CompromisePolicy()
    raise argparse.ArgumentTypeError(
        f"unknown policy {name!r}; expected default, strict or compromise[:x]"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Demand-aware process scheduling (ICPP 2018) — experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the machine configuration (Table 1)")
    sub.add_parser("table2", help="print the workload inventory (Table 2)")

    run_p = sub.add_parser("run", help="run one workload under one policy")
    run_p.add_argument("workload", choices=WORKLOAD_NAMES)
    run_p.add_argument(
        "--policy", type=policy_by_name, default=None,
        help="default | strict | compromise[:factor]",
    )
    run_p.add_argument(
        "--sanitize", action="store_true",
        help="run under the kernel sanitizer (fails on invariant violations)",
    )

    san_p = sub.add_parser(
        "sanitize",
        help="fuzz the scheduler with randomized adversarial workloads "
        "under the runtime invariant checker",
    )
    san_p.add_argument("--seed", type=int, default=0, help="base seed")
    san_p.add_argument(
        "--runs", type=int, default=200, help="number of fuzz cases"
    )
    san_p.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop starting new cases after this much wall-clock time",
    )
    san_p.add_argument(
        "--configs", nargs="*", default=None,
        help="policy configs to fuzz (default: all shipped configs)",
    )
    san_p.add_argument(
        "-v", "--verbose", action="store_true", help="print per-case progress"
    )

    sweep_p = sub.add_parser(
        "sweep", help="figures 7-10: every workload under every policy"
    )
    sweep_p.add_argument(
        "--workloads", nargs="*", choices=WORKLOAD_NAMES, default=WORKLOAD_NAMES,
    )
    sweep_p.add_argument(
        "--chart", action="store_true", help="render bar charts instead of tables"
    )
    _add_grid_options(sweep_p)

    fig_p = sub.add_parser("fig", help="regenerate one figure")
    fig_p.add_argument("number", type=int, choices=(1, 11, 12, 13))
    fig_p.add_argument(
        "--chart", action="store_true", help="render a chart instead of a table"
    )
    _add_grid_options(fig_p)

    return parser


def _add_grid_options(parser: argparse.ArgumentParser) -> None:
    """Parallel-fleet options shared by the grid-shaped commands."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the experiment grid (default 1 = serial; "
        "results are identical for any N)",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"result cache directory (default {DEFAULT_CACHE_DIR!r})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every run; neither read nor write the cache",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock budget (--jobs >= 2 only); an overrunning "
        "run becomes a failure record instead of stalling the grid",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print one line per completed run with a running ETA",
    )


class _GridTracker:
    """Collect grid counters (and optionally echo per-run progress)."""

    def __init__(self, echo: bool) -> None:
        self.echo = echo
        self.total = self.executed = self.cached = self.failed = 0

    def __call__(self, event) -> None:
        from .experiments.parallel import print_progress

        self.total = event.total
        self.executed = event.executed
        self.cached = event.cached
        self.failed = event.failed
        if self.echo:
            print_progress(event)

    def summary(self) -> str:
        return (
            f"# grid: {self.total} runs — {self.executed} executed, "
            f"{self.cached} cached, {self.failed} failed"
        )


def _cmd_run(args) -> int:
    workload = workload_by_name(args.workload)
    rep = run_workload(workload, args.policy, sanitize=args.sanitize)
    policy_name = args.policy.name if args.policy else "Linux Default"
    print(f"# {args.workload} under {policy_name}")
    print(rep.describe())
    if args.sanitize:
        print("sanitizer: 0 violations")
    return 0


def _cmd_sanitize(args) -> int:
    from .sanitizer import FUZZ_CONFIGS, run_fuzz

    names = [c[0] for c in FUZZ_CONFIGS]
    if args.configs:
        unknown = [c for c in args.configs if c not in names]
        if unknown:
            print(f"unknown config(s) {unknown}; available: {names}")
            return 2

    progress = None
    if args.verbose:
        def progress(run, outcome):
            status = "ok" if outcome.ok else "FAIL"
            print(
                f"run {run} seed={outcome.seed} config={outcome.config:<16}"
                f" events={outcome.events:<7} {status}"
            )

    report = run_fuzz(
        seed=args.seed,
        runs=args.runs,
        time_budget_s=args.time_budget,
        configs=args.configs or None,
        progress=progress,
    )
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_sweep(args) -> int:
    from .experiments.charts import grouped_bar_chart

    tracker = _GridTracker(echo=args.progress)
    try:
        sweep = figures.figures7to10(
            args.workloads,
            jobs=args.jobs,
            cache=None if args.no_cache else args.cache_dir,
            timeout_s=args.timeout,
            progress=tracker,
        )
    except ReproError as exc:
        print(tracker.summary())
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    if args.chart:
        for metric, title, unit in (
            ("system_j", "Figure 7: system energy", "J"),
            ("dram_j", "Figure 8: DRAM energy", "J"),
            ("gflops", "Figure 9: performance", "GFLOPS"),
            ("gflops_per_watt", "Figure 10: efficiency", "GFLOPS/W"),
        ):
            groups = {
                wl: {p: getattr(r, metric) for p, r in reports.items()}
                for wl, reports in sweep.items()
            }
            print(grouped_bar_chart(groups, title=title, unit=unit))
            print()
    else:
        for renderer in (
            report.render_figure7,
            report.render_figure8,
            report.render_figure9,
            report.render_figure10,
        ):
            print(renderer(sweep))
            print()
    print(report.render_comparison_summary(sweep))
    print(tracker.summary())
    return 0


def _cmd_fig(args) -> int:
    from .experiments.charts import bar_chart, line_chart

    chart = getattr(args, "chart", False)
    tracker = _GridTracker(echo=args.progress)
    grid_kwargs = dict(
        jobs=args.jobs,
        cache=None if args.no_cache else args.cache_dir,
        timeout_s=args.timeout,
        progress=tracker,
    )
    if args.number == 1:
        points = figures.figure1_timeline(
            jobs=args.jobs, cache=None if args.no_cache else args.cache_dir
        )
        if chart:
            print(bar_chart(
                {n: p.wall_s * 1e3 for n, p in points.items()},
                title="Figure 1: wall time of two conflicting processes",
                unit="ms",
            ))
        else:
            for name, p in points.items():
                print(
                    f"{name:<16} wall {p.wall_s * 1e3:7.1f} ms  "
                    f"LLC misses {p.llc_misses:9.3e}  switches "
                    f"{int(p.context_switches)}"
                )
    elif args.number == 11:
        reports = figures.figure11_overhead(**grid_kwargs)
        if chart:
            print(bar_chart(
                {k: r.gflops for k, r in reports.items()},
                title="Figure 11: dgemm GFLOPS vs tracking granularity",
                unit="GFLOPS",
            ))
        else:
            print(report.render_figure11(reports))
    elif args.number == 12:
        curves = figures.figure12_wss_prediction()
        if chart:
            series = {
                c.name: list(zip(c.input_sizes, c.measured_mb)) for c in curves
            }
            print(line_chart(
                series,
                title="Figure 12: measured WSS (MB) vs input size",
                x_label="input size",
                y_label="WSS (MB)",
                logx=True,
            ))
        else:
            print(report.render_figure12(curves))
    elif args.number == 13:
        grid = figures.figure13_interference(**grid_kwargs)
        if chart:
            series = {
                f"n={n}": [(i, g) for i, g in row.items()]
                for n, row in grid.items()
            }
            print(line_chart(
                series,
                title="Figure 13: GFLOPS vs concurrent instances",
                x_label="instances",
                y_label="GFLOPS",
            ))
        else:
            print(report.render_figure13(grid))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        print(figures.table1_machine())
        return 0
    if args.command == "table2":
        for row in figures.table2_rows():
            print(
                f"{row['workload']:<10} procs={row['n_processes']:<3} "
                f"thr/proc={row['threads_per_proc']}  wss={row['wss_mb']} MB  "
                f"reuse={row['reuses']}"
            )
        return 0
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sanitize":
        return _cmd_sanitize(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "fig":
        return _cmd_fig(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
