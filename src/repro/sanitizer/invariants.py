"""The invariant checkers — a "KSAN" for the simulated kernel.

Each checker continuously asserts one correctness property the paper claims
(§3.1, §3.4) but the implementation only enforces implicitly:

``demand-bound``
    Aggregate admitted LLC demand never exceeds the policy bound: capacity
    for RDA:Strict, ``x`` × capacity for RDA:Compromise.  Starvation-guard
    forced admissions deliberately bypass the predicate and are exempt.
``lost-wakeup``
    Every ``PP_DENY`` is eventually followed by a ``PP_WAKE`` or the
    thread's ``EXIT`` — the waitlist plus kernel wait queue never lose a
    wakeup, and no waiter starves past the end of the simulation.
``queue-exclusivity``
    A thread is never simultaneously on the run queue and a wait queue,
    and thread states agree with queue membership at every quiescent point.
``dispatch-overlap``
    Per-core dispatch intervals never overlap: a core is released (preempt,
    deny, barrier, exit) before the next dispatch, and no thread occupies
    two cores at once.
``conservation``
    Every ``pp_begin`` admission has a matching release: charges and
    releases balance, the resource monitor's usage equals the sum of
    outstanding reservations, and everything drains to zero at exit.

Checkers observe three streams wired up by
:class:`~repro.sanitizer.sanitizer.KernelSanitizer`: the kernel trace-event
stream (``on_event``), quiescent points after every engine event
(``on_quiescent``), and the resource monitor's charge/release ledger
(``on_charge`` / ``on_release``).
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ..core.progress_period import PeriodRequest, PeriodState, ResourceKind
from ..errors import SanitizerError
from ..sim.process import ThreadState
from ..sim.tracing import TraceEvent, TraceKind

__all__ = [
    "InvariantChecker",
    "DemandBoundChecker",
    "LostWakeupChecker",
    "QueueExclusivityChecker",
    "DispatchOverlapChecker",
    "ConservationChecker",
    "CHECKERS",
    "register_checker",
    "default_checkers",
]

#: slack for float comparisons against byte quantities
_EPS_BYTES = 1e-6


class InvariantChecker:
    """Base class: bind to a sanitizer, observe streams, report violations.

    Subclasses override any subset of the observation hooks.  Ongoing-state
    invariants (a condition that stays broken across many events) should
    report through :meth:`report_once` with a stable key so one root cause
    produces one violation, not one per subsequent event.
    """

    #: registry name; also the ``invariant`` field of reported violations
    name = "invariant"

    def __init__(self) -> None:
        self.sanitizer = None
        self._latched: set = set()

    # ------------------------------------------------------------------
    def bind(self, sanitizer) -> None:
        """Attach to a sanitizer (grants access to kernel and scheduler)."""
        self.sanitizer = sanitizer

    @property
    def kernel(self):
        return self.sanitizer.kernel

    @property
    def scheduler(self):
        """The RDA extension, or None when running the default policy."""
        return self.sanitizer.scheduler

    # ------------------------------------------------------------------
    # observation hooks
    # ------------------------------------------------------------------
    def on_event(self, event: TraceEvent) -> None:
        """A kernel trace event was emitted."""

    def on_quiescent(self, now: float) -> None:
        """An engine event finished; global state is consistent."""

    def on_charge(self, request: PeriodRequest, added_bytes: int) -> None:
        """The resource monitor charged a period's demand."""

    def on_release(self, request: PeriodRequest, removed_bytes: int) -> None:
        """The resource monitor released a period's demand."""

    def finalize(self, now: float) -> None:
        """The simulation completed; check end-of-run invariants."""

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    def report(self, message: str, tid: Optional[int] = None) -> None:
        self.sanitizer.report(self.name, message, tid=tid)

    def report_once(self, key, message: str, tid: Optional[int] = None) -> None:
        """Report a keyed ongoing violation exactly once while it persists."""
        if key in self._latched:
            return
        self._latched.add(key)
        self.report(message, tid=tid)

    def clear(self, key) -> None:
        """The keyed condition healed; a future recurrence reports again."""
        self._latched.discard(key)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
CHECKERS: Dict[str, Type[InvariantChecker]] = {}


def register_checker(cls: Type[InvariantChecker]) -> Type[InvariantChecker]:
    """Class decorator adding a checker to the pluggable registry."""
    if not cls.name or cls.name == InvariantChecker.name:
        raise SanitizerError(f"checker {cls.__name__} needs a distinct name")
    if cls.name in CHECKERS:
        raise SanitizerError(f"duplicate checker name {cls.name!r}")
    CHECKERS[cls.name] = cls
    return cls


def default_checkers(
    only: Optional[list] = None,
) -> list:
    """Fresh instances of every registered checker (or a named subset)."""
    names = list(CHECKERS) if only is None else list(only)
    instances = []
    for name in names:
        try:
            instances.append(CHECKERS[name]())
        except KeyError:
            raise SanitizerError(
                f"unknown checker {name!r}; registered: {sorted(CHECKERS)}"
            ) from None
    return instances


# ----------------------------------------------------------------------
# 1. aggregate admitted demand <= policy bound
# ----------------------------------------------------------------------
@register_checker
class DemandBoundChecker(InvariantChecker):
    """RDA:Strict never oversubscribes the LLC; Compromise stays ≤ x·capacity.

    Starvation-guard admissions bypass the predicate by design (they only
    fire when the resource is otherwise idle), so the demand of running
    *forced* periods is subtracted before comparing against the bound.
    """

    name = "demand-bound"

    def on_quiescent(self, now: float) -> None:
        scheduler = self.scheduler
        if scheduler is None:
            return
        forced_exempt: Dict[ResourceKind, int] = {}
        for period in scheduler.registry:
            if period.forced and period.state is PeriodState.RUNNING:
                forced_exempt[period.resource] = (
                    forced_exempt.get(period.resource, 0) + period.demand_bytes
                )
        for kind in scheduler.managed_kinds:
            state = scheduler.resources.state(kind)
            bound = scheduler.policy.demand_bound(state.capacity_bytes)
            usage = state.usage_bytes - forced_exempt.get(kind, 0)
            if usage > bound + _EPS_BYTES:
                self.report_once(
                    ("over", kind),
                    f"{kind}: admitted demand {usage}B exceeds policy bound "
                    f"{bound:.0f}B ({scheduler.policy.name}, capacity "
                    f"{state.capacity_bytes}B)",
                )
            else:
                self.clear(("over", kind))


# ----------------------------------------------------------------------
# 2. no lost wakeups / no starvation
# ----------------------------------------------------------------------
@register_checker
class LostWakeupChecker(InvariantChecker):
    """Every PP_DENY is eventually followed by PP_WAKE or EXIT.

    Args:
        max_wait_s: optional bound on how long (simulated) a denied thread
            may stay parked while the simulation continues; ``None`` only
            checks at end of run (a waiter outliving the simulation *is*
            a lost wakeup, since every period completes by then).
    """

    name = "lost-wakeup"

    def __init__(self, max_wait_s: Optional[float] = None) -> None:
        super().__init__()
        self.max_wait_s = max_wait_s
        #: tid -> (deny time, phase detail)
        self.pending: Dict[int, tuple] = {}

    def on_event(self, event: TraceEvent) -> None:
        if event.kind is TraceKind.PP_DENY:
            self.pending[event.tid] = (event.time_s, event.detail)
        elif event.kind is TraceKind.PP_WAKE:
            if self.pending.pop(event.tid, None) is None:
                self.report(
                    "pp_wake without a preceding pp_deny (spurious wakeup)",
                    tid=event.tid,
                )
        elif event.kind is TraceKind.EXIT:
            self.pending.pop(event.tid, None)

    def on_quiescent(self, now: float) -> None:
        if self.max_wait_s is None:
            return
        for tid, (denied_at, detail) in self.pending.items():
            if now - denied_at > self.max_wait_s:
                self.report_once(
                    ("starved", tid),
                    f"thread denied at t={denied_at:.9f} ({detail!r}) still "
                    f"waiting after {now - denied_at:.6f}s > "
                    f"max_wait_s={self.max_wait_s}",
                    tid=tid,
                )

    def finalize(self, now: float) -> None:
        for tid, (denied_at, detail) in sorted(self.pending.items()):
            self.report(
                f"pp_deny at t={denied_at:.9f} ({detail!r}) never followed by "
                "pp_wake or exit — lost wakeup / starvation",
                tid=tid,
            )


# ----------------------------------------------------------------------
# 3. run queue and wait queues are mutually exclusive
# ----------------------------------------------------------------------
@register_checker
class QueueExclusivityChecker(InvariantChecker):
    """Thread states agree with queue membership at every quiescent point."""

    name = "queue-exclusivity"

    def on_quiescent(self, now: float) -> None:
        kernel = self.kernel
        runqueue = kernel.cfs.queue
        on_core = {
            c.thread.tid for c in kernel.cores if c.thread is not None
        }
        for process in kernel.processes:
            for thread in process.threads:
                tid = thread.tid
                queued = thread in runqueue
                state = thread.state
                if queued and state in (
                    ThreadState.PP_WAIT,
                    ThreadState.BLOCKED,
                    ThreadState.RUNNING,
                    ThreadState.EXITED,
                ):
                    self.report_once(
                        ("runqueue", tid, state),
                        f"thread in state {state.value} is on the run queue",
                        tid=tid,
                    )
                elif not queued:
                    self.clear(("runqueue", tid, state))
                if state is ThreadState.RUNNING and tid not in on_core:
                    self.report_once(
                        ("no-core", tid),
                        "thread in state running is not on any core",
                        tid=tid,
                    )
                elif tid in on_core:
                    self.clear(("no-core", tid))
        for (pid, phase_idx), queue in kernel._barriers.items():
            for thread in queue.waiters():
                if thread in runqueue:
                    self.report_once(
                        ("both", thread.tid, pid, phase_idx),
                        f"thread parked on wait queue {queue.name!r} is "
                        "simultaneously on the run queue",
                        tid=thread.tid,
                    )
                if thread.state is not ThreadState.BLOCKED:
                    self.report_once(
                        ("state", thread.tid, pid, phase_idx),
                        f"thread parked on wait queue {queue.name!r} is in "
                        f"state {thread.state.value}, expected blocked",
                        tid=thread.tid,
                    )


# ----------------------------------------------------------------------
# 4. per-core dispatch intervals never overlap
# ----------------------------------------------------------------------
@register_checker
class DispatchOverlapChecker(InvariantChecker):
    """A core is released before its next dispatch; one core per thread."""

    name = "dispatch-overlap"

    #: events that end a thread's occupancy of its core
    _RELEASES = (
        TraceKind.PREEMPT,
        TraceKind.PP_DENY,
        TraceKind.BARRIER_WAIT,
        TraceKind.EXIT,
    )

    def __init__(self) -> None:
        super().__init__()
        self.occupant: Dict[int, int] = {}  # core -> tid
        self.core_of: Dict[int, int] = {}  # tid -> core

    def on_event(self, event: TraceEvent) -> None:
        if event.kind is TraceKind.DISPATCH:
            core, tid = event.core, event.tid
            if core is None:
                self.report("dispatch event without a core", tid=tid)
                return
            holder = self.occupant.get(core)
            if holder is not None:
                self.report(
                    f"dispatch on core {core} overlaps the interval of "
                    f"tid {holder} (never released)",
                    tid=tid,
                )
            elsewhere = self.core_of.get(tid)
            if elsewhere is not None and elsewhere != core:
                self.report(
                    f"thread dispatched on core {core} while still occupying "
                    f"core {elsewhere}",
                    tid=tid,
                )
            self.occupant[core] = tid
            self.core_of[tid] = core
        elif event.kind in self._RELEASES and event.core is not None:
            core, tid = event.core, event.tid
            holder = self.occupant.get(core)
            if holder == tid:
                del self.occupant[core]
                self.core_of.pop(tid, None)
            elif holder is not None:
                self.report(
                    f"{event.kind.value} on core {core} by tid {tid}, but the "
                    f"core's dispatch interval belongs to tid {holder}",
                    tid=tid,
                )


# ----------------------------------------------------------------------
# 5. conservation of reserved capacity
# ----------------------------------------------------------------------
@register_checker
class ConservationChecker(InvariantChecker):
    """Charges and releases balance; usage equals outstanding reservations."""

    name = "conservation"

    def __init__(self) -> None:
        super().__init__()
        #: multiset of open charges — requests are frozen value objects, so
        #: identical concurrent periods simply count twice
        self.open: Dict[PeriodRequest, int] = {}
        self.net_bytes: Dict[ResourceKind, float] = {}  # charged − released

    def on_charge(self, request: PeriodRequest, added_bytes: int) -> None:
        self.open[request] = self.open.get(request, 0) + 1
        kind = request.resource
        self.net_bytes[kind] = self.net_bytes.get(kind, 0.0) + added_bytes

    def on_release(self, request: PeriodRequest, removed_bytes: int) -> None:
        kind = request.resource
        held = self.open.get(request, 0)
        if held <= 0:
            self.report(
                f"{kind}: release of {request.demand_bytes}B "
                f"({request.label or 'unlabelled'}) without a matching "
                "charge (double release?)"
            )
        elif held == 1:
            del self.open[request]
        else:
            self.open[request] = held - 1
        self.net_bytes[kind] = self.net_bytes.get(kind, 0.0) - removed_bytes
        if self.net_bytes[kind] < -_EPS_BYTES:
            self.report(
                f"{kind}: net reserved capacity went negative "
                f"({self.net_bytes[kind]:.0f}B)"
            )

    def on_quiescent(self, now: float) -> None:
        scheduler = self.scheduler
        if scheduler is None:
            return
        for kind in scheduler.managed_kinds:
            usage = scheduler.resources.state(kind).usage_bytes
            expected = self.net_bytes.get(kind, 0.0)
            if abs(usage - expected) > _EPS_BYTES:
                self.report_once(
                    ("drift", kind),
                    f"{kind}: resource monitor reports {usage}B in use but "
                    f"the charge/release ledger sums to {expected:.0f}B — "
                    "usage mutated outside increment_load/release_load",
                )
            else:
                self.clear(("drift", kind))

    def finalize(self, now: float) -> None:
        scheduler = self.scheduler
        leaked: Dict[ResourceKind, int] = {}
        for request, held in self.open.items():
            leaked[request.resource] = leaked.get(request.resource, 0) + held
        for kind in sorted(set(leaked) | set(self.net_bytes), key=str):
            if leaked.get(kind, 0):
                self.report(
                    f"{kind}: {leaked[kind]} reservation(s) never released — "
                    "pp_begin without a matching pp_end/exit"
                )
            net = self.net_bytes.get(kind, 0.0)
            if abs(net) > _EPS_BYTES:
                self.report(
                    f"{kind}: {net:.0f}B still reserved at end of simulation"
                )
        if scheduler is None:
            return
        for kind in scheduler.managed_kinds:
            usage = scheduler.resources.state(kind).usage_bytes
            if usage != 0:
                self.report(
                    f"{kind}: usage is {usage}B after all threads exited"
                )
        if len(scheduler.registry) != 0:
            self.report(
                f"{len(scheduler.registry)} progress period(s) still "
                "registered after all threads exited"
            )
        if len(scheduler.waitlist) != 0:
            self.report(
                f"{len(scheduler.waitlist)} period(s) still parked on the "
                "waitlist after all threads exited"
            )
