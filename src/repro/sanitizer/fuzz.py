"""Randomized scheduler fuzzing: adversarial PP mixes under the sanitizer.

Each seeded run generates a small machine plus a workload built to stress
the admission machinery — oversized working sets (larger than the LLC),
near-zero-length periods, mis-annotated demands, shared working sets,
bursty arrivals, barriers, and a mix of annotated and unannotated
processes — then executes it under every shipped policy configuration with
a :class:`~repro.sanitizer.KernelSanitizer` attached.  Any invariant
violation is a scheduler bug (or a checker bug); either way the structured
report pins it to a seed that reproduces it deterministically.

A slice of the demand space is derived from real synthetic address traces
(:mod:`repro.workloads.tracegen` measured by the §2.4 window statistics),
so the fuzzer also exercises demands with the structure of the paper's
workloads rather than only uniform noise.

Entry points: :func:`run_fuzz` (library), ``python -m repro sanitize``
(CLI), ``tests/sanitizer/test_fuzz.py`` (CI).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Optional, Sequence

import numpy as np

from ..config import CacheConfig, CpuConfig, MachineConfig
from ..core.policy import CompromisePolicy, SchedulingPolicy, StrictPolicy
from ..core.rda import RdaScheduler
from ..sim.kernel import Kernel
from ..units import kib
from ..workloads.base import (
    Phase,
    PpSpec,
    ProcessSpec,
    Workload,
    barrier_phase,
)
from ..workloads.tracegen import blocked_trace, streaming_trace
from .sanitizer import KernelSanitizer
from .violations import Violation

__all__ = [
    "FuzzCase",
    "FuzzOutcome",
    "FuzzReport",
    "FUZZ_CONFIGS",
    "fuzz_machine",
    "fuzz_workload",
    "run_fuzz",
]

#: the policy × waitlist-mode grid every fuzz case runs under
FUZZ_CONFIGS: Sequence[tuple[str, Optional[Callable[[], SchedulingPolicy]], bool]] = (
    ("default", None, False),
    ("strict", StrictPolicy, False),
    ("strict+fifo", StrictPolicy, True),
    ("compromise", CompromisePolicy, False),
    ("compromise+fifo", CompromisePolicy, True),
)

#: safety valve per simulation — a livelock shows up as a violation report
_MAX_EVENTS = 400_000


@lru_cache(maxsize=1)
def _trace_derived_demands() -> tuple[tuple[int, float], ...]:
    """(wss_bytes, reuse) pairs measured from tracegen address streams.

    Small traces through the §2.4 window statistics give the fuzzer demand
    shapes with the structure of real codes (streaming sweeps, blocked
    reuse) instead of uniform noise.  Cached: the measurement is the same
    every run.
    """
    from ..mem.working_set import window_stats

    pairs = []
    for trace in (
        streaming_trace(kib(256), n_accesses=40_000),
        blocked_trace(kib(64), n_accesses=40_000, reuse_passes=8),
        blocked_trace(kib(512), n_accesses=40_000, reuse_passes=3),
    ):
        stats = window_stats(trace.addresses)
        reuse = min(1.0, max(0.0, 1.0 - 1.0 / max(stats.reuse_ratio, 1.0)))
        pairs.append((max(stats.wss_bytes, 4096), reuse))
    return tuple(pairs)


def fuzz_machine(rng: np.random.Generator) -> MachineConfig:
    """A small randomized machine: 2–4 cores, 256 KiB–2 MiB LLC."""
    return MachineConfig(
        cpu=CpuConfig(n_cores=int(rng.integers(2, 5))),
        llc=CacheConfig(
            "L3-Shared",
            kib(int(rng.choice([256, 512, 1024, 2048]))),
            associativity=16,
            shared=True,
        ),
    )


def _fuzz_phase(
    rng: np.random.Generator, llc_capacity: int, index: int
) -> Phase:
    """One adversarial compute phase."""
    kind = rng.random()
    if kind < 0.10:
        # near-zero-length period: admission/release churn dominates
        instructions = int(rng.integers(1, 50))
    else:
        instructions = int(10 ** rng.uniform(4.0, 5.7))
    if rng.random() < 0.25:
        wss, reuse = _trace_derived_demands()[
            int(rng.integers(len(_trace_derived_demands())))
        ]
        wss = min(wss, 2 * llc_capacity)
    else:
        # log-uniform from 4 KiB up to 2x the LLC (oversized WSS included)
        wss = int(10 ** rng.uniform(np.log10(4096), np.log10(2 * llc_capacity)))
        reuse = float(rng.random())
    declare = rng.random() < 0.75  # mixed annotated / unannotated
    declared = None
    if declare:
        roll = rng.random()
        if roll < 0.10:
            declared = 0  # zero-demand declaration
        elif roll < 0.35:
            # mis-annotation: declared demand off by 0.25x–4x
            declared = max(0, int(wss * 4 ** rng.uniform(-1.0, 1.0)))
    return Phase(
        name=f"fz{index}",
        instructions=instructions,
        flops_per_instr=float(rng.uniform(0.0, 2.0)),
        mem_refs_per_instr=float(rng.uniform(0.1, 0.5)),
        llc_refs_per_memref=float(rng.uniform(0.02, 0.3)),
        wss_bytes=wss,
        reuse=reuse,
        pp=PpSpec(demand_bytes=declared) if declare else None,
        shared=bool(rng.random() < 0.3),
    )


def fuzz_workload(
    rng: np.random.Generator, machine: MachineConfig
) -> tuple[Workload, list[float]]:
    """An adversarial workload plus bursty per-process arrival offsets."""
    llc = machine.llc_capacity
    n_processes = int(rng.integers(2, 6))
    specs = []
    for p in range(n_processes):
        n_threads = int(rng.integers(1, 4))
        n_phases = int(rng.integers(1, 5))
        program: list[Phase] = []
        for k in range(n_phases):
            program.append(_fuzz_phase(rng, llc, k))
            # barriers sit between periods (§3.4 forbids sync inside one)
            if n_threads > 1 and k < n_phases - 1 and rng.random() < 0.4:
                program.append(barrier_phase(f"bar{k}"))
        specs.append(
            ProcessSpec(
                name=f"fuzz{p}",
                program=program,
                n_threads=n_threads,
                nice=int(rng.integers(-5, 6)),
            )
        )
    # bursty arrivals: processes land in a few tight clusters
    n_bursts = int(rng.integers(1, 4))
    burst_times = np.sort(rng.uniform(0.0, 5e-3, n_bursts))
    offsets = [
        float(burst_times[int(rng.integers(n_bursts))] + rng.uniform(0, 50e-6))
        for _ in specs
    ]
    return Workload(name="fuzz", processes=specs), offsets


@dataclass(frozen=True)
class FuzzCase:
    """One generated (machine, workload, arrivals) triple."""

    seed: int
    machine: MachineConfig
    workload: Workload
    offsets: Sequence[float]


@dataclass(frozen=True)
class FuzzOutcome:
    """Result of one fuzz case under one policy configuration."""

    seed: int
    config: str
    violations: tuple[Violation, ...]
    events: int
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations and not self.error


@dataclass
class FuzzReport:
    """Aggregate of a fuzz campaign."""

    outcomes: list[FuzzOutcome] = field(default_factory=list)
    runs: int = 0
    wall_s: float = 0.0

    @property
    def failures(self) -> list[FuzzOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def n_violations(self) -> int:
        return sum(len(o.violations) for o in self.outcomes)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        n_configs = len({o.config for o in self.outcomes}) or len(FUZZ_CONFIGS)
        lines = [
            f"fuzz: {self.runs} run(s) x {n_configs} configs = "
            f"{len(self.outcomes)} simulations in {self.wall_s:.1f}s — "
            f"{self.n_violations} violation(s), "
            f"{sum(1 for o in self.outcomes if o.error)} error(s)"
        ]
        for o in self.failures:
            lines.append(f"-- seed={o.seed} config={o.config}")
            if o.error:
                lines.append(f"   error: {o.error}")
            for v in o.violations:
                lines.append("   " + v.describe().replace("\n", "\n   "))
        return "\n".join(lines)


def build_case(seed: int) -> FuzzCase:
    """Deterministically generate the fuzz case for one seed."""
    rng = np.random.default_rng(seed)
    machine = fuzz_machine(rng)
    workload, offsets = fuzz_workload(rng, machine)
    return FuzzCase(seed=seed, machine=machine, workload=workload, offsets=offsets)


def run_case(case: FuzzCase, config_name: str) -> FuzzOutcome:
    """Run one fuzz case under one named policy configuration."""
    for name, policy_factory, strict_fifo in FUZZ_CONFIGS:
        if name == config_name:
            break
    else:
        raise ValueError(f"unknown fuzz config {config_name!r}")
    scheduler = (
        RdaScheduler(
            policy=policy_factory(),
            config=case.machine,
            strict_fifo_waitlist=strict_fifo,
        )
        if policy_factory is not None
        else None
    )
    sanitizer = KernelSanitizer(strict=False)
    kernel = Kernel(config=case.machine, extension=scheduler, sanitize=sanitizer)
    for spec, offset in zip(case.workload.processes, case.offsets):
        kernel.spawn(spec, at=offset)
    error = ""
    try:
        kernel.run(max_events=_MAX_EVENTS)
    except Exception as exc:  # a crash is as much a finding as a violation
        error = f"{type(exc).__name__}: {exc}"
    sanitizer.finalize()
    return FuzzOutcome(
        seed=case.seed,
        config=config_name,
        violations=tuple(sanitizer.violations),
        events=kernel.engine.events_processed,
        error=error,
    )


def _fuzz_task(payload: tuple[int, str]) -> dict:
    """Fan-out worker: one (seed, config) simulation, as picklable data.

    Violations cross the process boundary without their trace-event windows
    (rerunning the seed serially reproduces the full context); everything
    the aggregate report needs survives.
    """
    case_seed, config = payload
    outcome = run_case(build_case(case_seed), config)
    return {
        "seed": outcome.seed,
        "config": outcome.config,
        "events": outcome.events,
        "error": outcome.error,
        "violations": [
            {
                "invariant": v.invariant,
                "time_s": v.time_s,
                "message": v.message,
                "tid": v.tid,
            }
            for v in outcome.violations
        ],
    }


def _outcome_from_task(payload: tuple[int, str], task) -> Optional[FuzzOutcome]:
    """Map one settled fan-out task back to a :class:`FuzzOutcome`."""
    case_seed, config = payload
    if task.status == "skipped":
        return None  # never started: outside the time budget
    if task.ok:
        return FuzzOutcome(
            seed=task.result["seed"],
            config=task.result["config"],
            violations=tuple(
                Violation(
                    invariant=v["invariant"],
                    time_s=v["time_s"],
                    message=v["message"],
                    tid=v["tid"],
                )
                for v in task.result["violations"]
            ),
            events=task.result["events"],
            error=task.result["error"],
        )
    return FuzzOutcome(
        seed=case_seed,
        config=config,
        violations=(),
        events=0,
        error=f"{task.status}: {task.message}",
    )


def run_fuzz(
    seed: int = 0,
    runs: int = 200,
    time_budget_s: Optional[float] = None,
    configs: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[int, FuzzOutcome], None]] = None,
    jobs: int = 1,
    timeout_s: Optional[float] = None,
) -> FuzzReport:
    """Run a seeded fuzz campaign; returns the aggregate report.

    Args:
        seed: base seed; run ``i`` uses seed ``seed + i`` (reproducible
            individually via :func:`build_case`).
        runs: number of generated cases (each runs under every config).
        time_budget_s: optional wall-clock cap — stop starting new cases
            once exceeded (the CI smoke job uses 60 s).
        configs: subset of :data:`FUZZ_CONFIGS` names; default all.
        progress: optional callback ``(run_index, outcome)``.
        jobs: worker processes; ``jobs>=2`` fans (seed, config) simulations
            out via :func:`~repro.experiments.parallel.fan_out`, with
            crashed and hung cases isolated to their own process.  The set
            of simulations run is identical to serial mode; parallel-mode
            violations carry no trace windows (rerun the seed to get them).
        timeout_s: per-simulation wall-clock budget (``jobs>=2`` only); an
            overrunning case becomes an errored outcome, which fails the
            campaign — a hang is a finding, not a stall.
    """
    names = (
        [c[0] for c in FUZZ_CONFIGS] if configs is None else list(configs)
    )
    report = FuzzReport()
    started = time.monotonic()
    if jobs > 1:
        from ..experiments.parallel import fan_out

        payloads = [(seed + i, name) for i in range(runs) for name in names]
        stop = (
            None
            if time_budget_s is None
            else lambda: time.monotonic() - started > time_budget_s
        )

        def on_settle(task, in_flight: int) -> None:
            if progress is not None and task.status != "skipped":
                case_seed, _ = payloads[task.index]
                outcome = _outcome_from_task(payloads[task.index], task)
                progress(case_seed - seed, outcome)

        tasks = fan_out(
            _fuzz_task, payloads, jobs=jobs, timeout_s=timeout_s,
            on_settle=on_settle, stop=stop,
        )
        seeds_run = set()
        for payload, task in zip(payloads, tasks):
            outcome = _outcome_from_task(payload, task)
            if outcome is not None:
                report.outcomes.append(outcome)
                seeds_run.add(payload[0])
        report.runs = len(seeds_run)
    else:
        for i in range(runs):
            if (
                time_budget_s is not None
                and time.monotonic() - started > time_budget_s
            ):
                break
            case = build_case(seed + i)
            for name in names:
                outcome = run_case(case, name)
                report.outcomes.append(outcome)
                if progress is not None:
                    progress(i, outcome)
            report.runs = i + 1
    report.wall_s = time.monotonic() - started
    return report
