"""Structured invariant-violation reports.

A :class:`Violation` pins one broken invariant to a simulated instant, the
thread involved, and the window of kernel trace events leading up to it —
enough context to replay and debug a scheduler regression without rerunning
the simulation under a debugger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..sim.tracing import TraceEvent

__all__ = ["Violation"]


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation."""

    invariant: str
    time_s: float
    message: str
    tid: Optional[int] = None
    #: most recent kernel trace events at detection time (oldest first)
    window: Sequence[TraceEvent] = field(default_factory=tuple)

    def describe(self) -> str:
        """Multi-line human-readable report."""
        who = f" tid={self.tid}" if self.tid is not None else ""
        lines = [f"[{self.invariant}] t={self.time_s:.9f}s{who}: {self.message}"]
        if self.window:
            lines.append("  recent events:")
            for e in self.window:
                core = "-" if e.core is None else e.core
                detail = f" {e.detail}" if e.detail else ""
                lines.append(
                    f"    t={e.time_s:.9f} {e.kind.value} tid={e.tid} "
                    f"core={core}{detail}"
                )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
