"""Runtime invariant checking for the simulated kernel ("KSAN").

The paper's correctness claims — Strict never oversubscribes the LLC, the
waitlist guarantees no starvation, pause/wake on the kernel wait queue never
loses a wakeup (§3.1, §3.4) — are enforced implicitly by the scheduler
implementation.  This package turns them into an explicit runtime oracle: a
pluggable registry of :class:`InvariantChecker` instances observing the
kernel's trace-event stream, engine quiescent points, and the resource
monitor's charge/release ledger, each producing structured
:class:`Violation` reports when an invariant breaks.

See ``docs/SANITIZER.md`` for the invariant catalogue and
:mod:`repro.sanitizer.fuzz` for the randomized scheduler fuzzing harness.
"""

from .invariants import (
    CHECKERS,
    ConservationChecker,
    DemandBoundChecker,
    DispatchOverlapChecker,
    InvariantChecker,
    LostWakeupChecker,
    QueueExclusivityChecker,
    default_checkers,
    register_checker,
)
from .fuzz import FUZZ_CONFIGS, FuzzOutcome, FuzzReport, build_case, run_case, run_fuzz
from .sanitizer import KernelSanitizer
from .violations import Violation

__all__ = [
    "KernelSanitizer",
    "Violation",
    "InvariantChecker",
    "DemandBoundChecker",
    "LostWakeupChecker",
    "QueueExclusivityChecker",
    "DispatchOverlapChecker",
    "ConservationChecker",
    "CHECKERS",
    "register_checker",
    "default_checkers",
    "FUZZ_CONFIGS",
    "FuzzOutcome",
    "FuzzReport",
    "build_case",
    "run_case",
    "run_fuzz",
]
