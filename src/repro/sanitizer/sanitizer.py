"""The sanitizer facade: wires checkers into a kernel and collects reports.

Usage — either let the kernel build one::

    kernel = Kernel(extension=scheduler, sanitize=True)
    kernel.launch(workload)
    kernel.run()  # raises SanitizerError on any violation

or attach an explicit instance to collect violations without raising::

    san = KernelSanitizer(strict=False)
    kernel = Kernel(extension=scheduler, sanitize=san)
    kernel.launch(workload)
    kernel.run()
    assert san.ok, san.summary()

The sanitizer subscribes to three observation points:

* ``kernel.observers`` — every trace event (``on_kernel_event``),
* ``kernel.engine.post_event_hooks`` — quiescent points after each engine
  event, where global state must be self-consistent,
* ``scheduler.resources.observers`` — the charge/release ledger of the
  resource monitor (when an RDA extension is attached).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from ..core.progress_period import PeriodRequest
from ..errors import SanitizerError
from ..sim.tracing import TraceEvent
from .invariants import InvariantChecker, default_checkers
from .violations import Violation

__all__ = ["KernelSanitizer"]

#: hard cap on collected violations (a broken invariant can fire per event)
_MAX_VIOLATIONS = 1000


class KernelSanitizer:
    """Runtime invariant checking for a simulated kernel.

    Args:
        checkers: checker instances to run; defaults to one of each
            registered checker (see :data:`repro.sanitizer.CHECKERS`).
        window: how many recent trace events each violation report carries.
        strict: when True, :meth:`Kernel.run` raises
            :class:`~repro.errors.SanitizerError` at the end of a completed
            simulation if any violation was recorded; when False the caller
            inspects :attr:`violations` itself (the fuzzer's mode).
    """

    def __init__(
        self,
        checkers: Optional[Sequence[InvariantChecker]] = None,
        window: int = 16,
        strict: bool = True,
    ) -> None:
        self.checkers = (
            list(checkers) if checkers is not None else default_checkers()
        )
        self.window: deque = deque(maxlen=window)
        self.violations: list[Violation] = []
        self.dropped = 0
        self.strict = strict
        self.kernel = None
        self._finalized = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, kernel) -> "KernelSanitizer":
        """Subscribe to a kernel's event stream, engine and resource table."""
        if self.kernel is not None:
            raise SanitizerError("sanitizer is already attached to a kernel")
        self.kernel = kernel
        kernel.observers.append(self)
        kernel.engine.post_event_hooks.append(self.on_quiescent)
        resources = getattr(kernel.extension, "resources", None)
        if resources is not None:
            resources.observers.append(self)
        for checker in self.checkers:
            checker.bind(self)
        return self

    @property
    def scheduler(self):
        """The attached RDA extension, or None under the default policy."""
        extension = self.kernel.extension if self.kernel is not None else None
        if extension is not None and hasattr(extension, "resources"):
            return extension
        return None

    # ------------------------------------------------------------------
    # observation fan-out
    # ------------------------------------------------------------------
    def on_kernel_event(self, kernel, event: TraceEvent) -> None:
        self.window.append(event)
        for checker in self.checkers:
            checker.on_event(event)

    def on_quiescent(self, now: float) -> None:
        for checker in self.checkers:
            checker.on_quiescent(now)

    def on_charge(self, request: PeriodRequest, added_bytes: int) -> None:
        for checker in self.checkers:
            checker.on_charge(request, added_bytes)

    def on_release(self, request: PeriodRequest, removed_bytes: int) -> None:
        for checker in self.checkers:
            checker.on_release(request, removed_bytes)

    def finalize(self) -> list[Violation]:
        """Run end-of-simulation checks (idempotent); returns violations."""
        if not self._finalized:
            self._finalized = True
            now = self.kernel.now if self.kernel is not None else 0.0
            for checker in self.checkers:
                checker.finalize(now)
        return self.violations

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(
        self, invariant: str, message: str, tid: Optional[int] = None
    ) -> None:
        """Record one violation with the current event window attached."""
        if len(self.violations) >= _MAX_VIOLATIONS:
            self.dropped += 1
            return
        self.violations.append(
            Violation(
                invariant=invariant,
                time_s=self.kernel.now if self.kernel is not None else 0.0,
                message=message,
                tid=tid,
                window=tuple(self.window),
            )
        )

    @property
    def ok(self) -> bool:
        return not self.violations

    def check(self) -> None:
        """Raise :class:`SanitizerError` if any violation was recorded."""
        if self.violations:
            raise SanitizerError(self.summary())

    def summary(self) -> str:
        """Human-readable digest of everything found (or a clean bill)."""
        if not self.violations:
            return "sanitizer: 0 violations"
        lines = [
            f"sanitizer: {len(self.violations)} invariant violation(s)"
            + (f" (+{self.dropped} dropped)" if self.dropped else "")
        ]
        for v in self.violations:
            lines.append(v.describe())
        return "\n".join(lines)
