"""Figure 10: GFLOPS per watt of system power, per workload per policy.

Shape reproduced from the paper:

* energy efficiency is "tightly coupled to the direct performance": the
  workloads whose GFLOPS improve also improve in GFLOPS/W;
* large efficiency gains on the high-reuse workloads (paper's maxima:
  2.05x raytrace, 1.68x water_nsq, 1.67x volrend, 1.36x ocean_cp);
* no gain for the low-reuse workloads.
"""

import pytest

from repro.experiments.metrics import compare_all
from repro.experiments.report import render_figure10
from repro.experiments.runner import run_policies
from repro.workloads.suite import workload_by_name
from .conftest import one_round


@pytest.mark.paper_figure("figure10")
def test_fig10_gflops_per_watt(benchmark, full_sweep):
    one_round(benchmark, run_policies, lambda: workload_by_name("Volrend"))
    print("\n" + render_figure10(full_sweep))

    gains = {
        name: {p: c.efficiency_gain for p, c in compare_all(name, reports).items()}
        for name, reports in full_sweep.items()
    }

    # strong efficiency gains on the high-reuse workloads
    assert max(gains["Raytrace"].values()) > 1.6
    assert max(gains["Water_nsq"].values()) > 1.5
    assert max(gains["Volrend"].values()) > 1.2
    assert max(gains["Ocean_cp"].values()) > 1.2

    # none for the low-reuse ones
    for name in ("BLAS-1", "Water_sp"):
        assert max(gains[name].values()) < 1.05, name

    # efficiency tracks performance: speedup > 1 workloads also gain in eff.
    speed = {
        name: max(c.speedup for c in compare_all(name, reports).values())
        for name, reports in full_sweep.items()
    }
    for name in gains:
        if speed[name] > 1.15:
            assert max(gains[name].values()) > 1.1, name
