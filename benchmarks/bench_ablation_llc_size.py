"""Sensitivity study: how the LLC capacity gates the paper's result.

The paper's §3.4 scopes when demand-aware scheduling helps: working sets
must *individually* fit the cache but *collectively* exceed it.  Sweep the
LLC capacity around the E5-2420's 15 MB on water_nsquared (12 × 3.6 MB of
collective demand) and watch the benefit appear and disappear:

* a small cache (4 MB) violates constraint (1): even one working set
  spills, gating buys nothing;
* the paper's 15 MB sits in the sweet spot: sets fit individually,
  collectively 43 MB ≫ 15 MB — the full RDA benefit;
* a huge cache (64 MB) violates constraint (2): everything fits at once,
  the default policy never thrashes, and RDA's reduced concurrency is pure
  cost.
"""

from dataclasses import replace

import pytest

from repro.config import CacheConfig, default_machine_config
from repro.core.policy import StrictPolicy
from repro.experiments.runner import run_workload
from repro.units import kib
from repro.workloads.splash2 import water_nsquared_workload
from .conftest import one_round

LLC_KIB = (4 * 1024, 15360, 64 * 1024)


def with_llc(capacity_kib: int):
    base = default_machine_config()
    return replace(
        base,
        llc=CacheConfig(
            "L3-Shared", kib(capacity_kib), associativity=16,
            latency_s=base.llc.latency_s, shared=True,
        ),
    )


def sweep_llc_sizes():
    out = {}
    for cap in LLC_KIB:
        cfg = with_llc(cap)
        default = run_workload(water_nsquared_workload(), None, config=cfg)
        strict = run_workload(water_nsquared_workload(), StrictPolicy(), config=cfg)
        out[cap] = {
            "speedup": strict.gflops / default.gflops,
            "energy_saving": 1.0 - strict.system_j / default.system_j,
        }
    return out


@pytest.mark.paper_figure("ablation-llc-size")
def test_benefit_window_tracks_cache_size(benchmark):
    rows = one_round(benchmark, sweep_llc_sizes)
    print()
    for cap, r in rows.items():
        print(
            f"  LLC {cap // 1024:>3} MB: strict speedup {r['speedup']:.2f}x, "
            f"energy saving {r['energy_saving']:+.0%}"
        )

    tiny, paper, huge = (rows[c] for c in LLC_KIB)
    # the paper's configuration sits in the benefit window
    assert paper["speedup"] > 1.3
    assert paper["energy_saving"] > 0.35
    # constraint (1) violated: individual sets spill a 4 MB cache; the
    # starvation guard keeps things moving but the benefit shrinks a lot
    assert tiny["speedup"] < paper["speedup"] - 0.2
    # constraint (2) violated: a 64 MB cache never thrashes; RDA adds ~0
    assert abs(huge["speedup"] - 1.0) < 0.08
    assert abs(huge["energy_saving"]) < 0.08