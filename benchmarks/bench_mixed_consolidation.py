"""Extension study: multi-programmed consolidation (mixed reuse levels).

The paper evaluates homogeneous workloads; its conclusion, though, is a
*deployment* policy: "the traditional scheduling policy would be used for
memory bound applications to maximize concurrency, [and] our resource
demand aware scheduling policies would be used for programs that have at
least a moderate level of data reuse".  A consolidated node runs both at
once.  This study mixes raytrace (high reuse, big sets) with BLAS-1
streams (low reuse) and checks the conclusion carries over:

* the default scheduler lets the mix thrash exactly as raytrace alone
  does;
* RDA gates raytrace's scenes while the streams — whose small low-reuse
  periods are always admissible — keep the remaining cores busy: both
  halves of the mix end up scheduled by the policy that suits them, inside
  one system.
"""

import pytest

from repro.core.policy import StrictPolicy
from repro.experiments.runner import run_workload
from repro.workloads.base import mix_workloads
from repro.workloads.splash2 import raytrace_workload
from repro.workloads.suite import blas_workload
from .conftest import one_round


def mixed():
    return mix_workloads(
        raytrace_workload(n_processes=24),
        blas_workload(1, n_processes=48),
        name="raytrace+blas1",
    )


def sweep_mix():
    return {
        "default": run_workload(mixed(), None),
        "strict": run_workload(mixed(), StrictPolicy()),
    }


@pytest.mark.paper_figure("extension-consolidation")
def test_mixed_reuse_consolidation(benchmark):
    results = one_round(benchmark, sweep_mix)
    print()
    for name, r in results.items():
        print(
            f"  {name:<8} {r.gflops:6.2f} GFLOPS  {r.system_j:7.1f} J  "
            f"wall {r.wall_s * 1e3:8.1f} ms  denials {int(r.pp_denials)}"
        )
    default, strict = results["default"], results["strict"]

    # the mix benefits from RDA: raytrace's thrash dominates the default run
    assert strict.gflops > 1.2 * default.gflops
    assert strict.system_j < 0.8 * default.system_j
    # the streams were never the ones being gated: denials exist (raytrace)
    # but the mix still finishes faster overall
    assert strict.pp_denials > 0
    assert strict.wall_s < default.wall_s