"""Figure 1: round-robin vs demand-aware execution of conflicting processes.

The motivating figure: processes whose combined demand exceeds the LLC
"spend extra time and energy by having to reload their data from memory
into cache" under round robin; demand-aware scheduling runs the conflicting
durations one after another and finishes sooner with fewer misses.
"""

import pytest

from repro.experiments.figures import figure1_timeline
from .conftest import one_round


@pytest.mark.paper_figure("figure1")
def test_fig1_motivating_timeline(benchmark):
    points = one_round(benchmark, figure1_timeline)
    print()
    for name, p in points.items():
        print(
            f"  {name:<16} wall {p.wall_s * 1e3:7.1f} ms   "
            f"LLC misses {p.llc_misses:9.3e}   switches {int(p.context_switches):4d}"
        )
    default = points["Linux Default"]
    strict = points["RDA: Strict"]
    # Demand-aware scheduling finishes sooner with fewer memory reloads.
    assert strict.wall_s < default.wall_s
    assert strict.llc_misses < default.llc_misses
