"""Figure 13: LLC interference vs concurrency for water_nsquared's largest
progress period.

Shape reproduced from the paper:

* input 512 and 3375: "the LLC is not utilized very extensively, and the
  performance scales fairly well";
* input 8000: scales well from 1 to 6 concurrent instances, then
  "significantly drops from 6 to 12" (paper: 33 → 20 GFLOPS) because the
  LLC "can hold all data from 6 processes, but not twelve";
* input 32768: scales from 1 to 6, then "remains unchanged" — memory
  bandwidth bound.
"""

import pytest

from repro.experiments.figures import figure13_interference
from repro.experiments.report import render_figure13
from .conftest import one_round


@pytest.mark.paper_figure("figure13")
def test_fig13_llc_interference(benchmark):
    grid = one_round(benchmark, figure13_interference)
    print("\n" + render_figure13(grid))

    # small inputs scale (near-)linearly to 12 instances
    assert grid[512][12] > 10 * grid[512][1]
    assert grid[3375][12] > grid[3375][6] > 3 * grid[3375][1]

    # 8000 molecules: the knee — scales to 6, *drops* at 12
    g8k = grid[8000]
    assert g8k[6] > 5 * g8k[1]
    assert g8k[12] < 0.8 * g8k[6]  # paper: 20/33 = 0.61

    # 32768 molecules: memory bound at 6; flat-ish (within 20 %) to 12
    g32k = grid[32768]
    assert g32k[6] > 2.5 * g32k[1]
    assert g32k[12] > 0.8 * g32k[6] or abs(g32k[12] - g32k[6]) < 0.2 * g32k[6]

    # the paper's cross-input observation: 32768 @ 6 is comparable to
    # 8000 @ 12 (both limited by the memory system)
    assert g32k[6] == pytest.approx(g8k[12], rel=0.35)
