"""Figure 8: DRAM-only energy per workload per policy.

Shape reproduced from the paper (§4.2):

* "the strict policy almost always resulted in better LLC utilization than
  the compromise configuration" — strict's DRAM energy ≤ compromise's on
  every workload where they differ meaningfully;
* for water_nsquared the gap is large (paper: strict a further 73 % below
  compromise);
* for the low-reuse workloads DRAM energy is "almost identical" across
  policies.
"""

import pytest

from repro.experiments.report import render_figure8
from repro.experiments.runner import run_policies
from repro.workloads.suite import workload_by_name
from .conftest import one_round


@pytest.mark.paper_figure("figure8")
def test_fig8_dram_energy(benchmark, full_sweep):
    one_round(benchmark, run_policies, lambda: workload_by_name("Water_sp"))
    print("\n" + render_figure8(full_sweep))

    dram = {
        name: {p: r.dram_j for p, r in reports.items()}
        for name, reports in full_sweep.items()
    }

    # strict never draws meaningfully more DRAM energy than compromise
    for name, row in dram.items():
        assert row["RDA: Strict"] <= row["RDA: Compromise"] * 1.05, name

    # water_nsquared: strict far below compromise (paper: 73 % further drop)
    wnsq = dram["Water_nsq"]
    assert wnsq["RDA: Strict"] < 0.6 * wnsq["RDA: Compromise"]

    # low-reuse workloads: all three policies nearly identical
    for name in ("BLAS-1", "Water_sp"):
        row = dram[name]
        assert max(row.values()) < 1.1 * min(row.values()), name

    # high-reuse workloads: strict far below the default
    for name in ("BLAS-3", "Water_nsq", "Raytrace", "Volrend"):
        row = dram[name]
        assert row["RDA: Strict"] < 0.6 * row["Linux Default"], name
