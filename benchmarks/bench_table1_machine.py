"""Table 1: machine configuration.

Regenerates the configuration block and checks every row against the
paper's Table 1.
"""

import pytest

from repro.config import default_machine_config
from repro.experiments.figures import table1_machine


@pytest.mark.paper_figure("table1")
def test_table1_machine(benchmark):
    text = benchmark(table1_machine)
    print("\n" + text)
    cfg = default_machine_config()
    assert "Intel(R) Xeon(R) CPU E5-2420 1.90 GHz, 12 Cores" in text
    assert "L1-Data" in text and "32 KBytes" in text
    assert "L2-Private" in text and "256 KBytes" in text
    assert "L3-Shared" in text and "15360 KBytes" in text
    assert "16 GiB" in text
    assert "CentOS 6.6, Linux 4.6.0" in text
    assert cfg.cpu.n_cores == 12
