"""Figure 11: progress-tracking overhead vs granularity.

The paper breaks dgemm (three nested loops of 512 iterations) into progress
periods at three levels and measures, with a single instance under the
strict policy:

* outermost loop (1 period)        — no observable overhead,
* middle loop (512 periods)        — 19 % performance overhead,
* innermost loop (262 144 periods) — 59 % performance overhead.
"""

import pytest

from repro.experiments.figures import figure11_overhead
from repro.experiments.report import render_figure11
from .conftest import one_round


@pytest.mark.paper_figure("figure11")
def test_fig11_tracking_overhead(benchmark):
    reports = one_round(benchmark, figure11_overhead)
    print("\n" + render_figure11(reports))

    base = reports["outer"].wall_s
    overhead_mid = reports["middle"].wall_s / base - 1.0
    overhead_inner = reports["inner"].wall_s / base - 1.0

    # outer: "no runtime overhead is observed"
    assert overhead_mid > 0.0
    assert abs(reports["outer"].gflops - reports["outer"].gflops) < 1e-9
    # middle: ~19 %
    assert 0.12 < overhead_mid < 0.28
    # inner: ~59 %
    assert 0.45 < overhead_inner < 0.70
    # monotone in granularity
    assert (
        reports["outer"].gflops
        > reports["middle"].gflops
        > reports["inner"].gflops
    )
