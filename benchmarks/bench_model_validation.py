"""Validation: analytical contention model vs trace-driven LRU simulation.

Sweeps the oversubscription ratio W/C with co-running cyclic loops and
compares the per-stream hit rate three ways: measured on the
set-associative simulator, predicted by the committed γ=2 model, and
predicted by the naive proportional (γ=1) model.  The committed model must
track the measured cliff; the proportional model must visibly overestimate
hit rates once the cache overflows — the justification for γ recorded in
docs/MODEL.md §2.
"""

import pytest

from repro.experiments.validation import validate_hit_rates
from .conftest import one_round


@pytest.mark.paper_figure("model-validation")
def test_gamma_model_tracks_trace_simulation(benchmark):
    points = one_round(benchmark, validate_hit_rates)
    print()
    print(f"  {'W/C':>5} {'measured':>9} {'gamma=2':>9} {'gamma=1':>9}")
    for p in points:
        print(
            f"  {p.oversubscription:>5.1f} {p.measured_hit_rate:>9.2f} "
            f"{p.predicted_gamma:>9.2f} {p.predicted_linear:>9.2f}"
        )

    by_ratio = {p.oversubscription: p for p in points}

    # fitting sets: everyone agrees hit rate ~ 1
    fit = by_ratio[0.5]
    assert fit.measured_hit_rate > 0.95
    assert fit.predicted_gamma == 1.0

    # overflowing sets: cyclic LRU collapses; gamma=2 must be the closer
    # model at every oversubscribed point, by a wide margin
    for ratio in (1.5, 2.0, 3.0):
        p = by_ratio[ratio]
        err_gamma = abs(p.predicted_gamma - p.measured_hit_rate)
        err_linear = abs(p.predicted_linear - p.measured_hit_rate)
        assert err_gamma < err_linear, (ratio, p)
        # and the proportional model overestimates badly
        assert p.predicted_linear > p.measured_hit_rate + 0.2

    # monotonicity: measured and predicted both fall with pressure
    measured = [p.measured_hit_rate for p in points]
    predicted = [p.predicted_gamma for p in points]
    assert measured == sorted(measured, reverse=True)
    assert predicted == sorted(predicted, reverse=True)
