"""Figure 7: system (CPU + cache + DRAM) energy per workload per policy.

Shape reproduced from the paper:

* RDA reduces system energy for the medium/high-reuse workloads (BLAS-2,
  BLAS-3, Water_nsq, Ocean_cp, Raytrace, Volrend);
* the maximum decrease is large (paper: 48 % on water_nsquared, strict);
* the low-reuse workloads (BLAS-1, Water_sp) do *not* benefit.
"""

import pytest

from repro.experiments.metrics import compare_all
from repro.experiments.report import render_comparison_summary, render_figure7
from repro.experiments.runner import run_policies
from repro.workloads.suite import workload_by_name
from .conftest import one_round

HIGH_REUSE = ("BLAS-3", "Water_nsq", "Ocean_cp", "Raytrace", "Volrend")
LOW_REUSE = ("BLAS-1", "Water_sp")


@pytest.mark.paper_figure("figure7")
def test_fig7_system_energy(benchmark, full_sweep):
    # benchmark one representative workload end to end; assert on the sweep
    one_round(
        benchmark, run_policies, lambda: workload_by_name("Water_nsq")
    )
    print("\n" + render_figure7(full_sweep))
    print(render_comparison_summary(full_sweep))

    decreases = {}
    for name, reports in full_sweep.items():
        cmp = compare_all(name, reports)
        decreases[name] = {p: c.system_energy_decrease for p, c in cmp.items()}

    # high/medium-reuse workloads save energy under at least one RDA policy
    for name in HIGH_REUSE:
        assert max(decreases[name].values()) > 0.10, name
    # low-reuse workloads see no meaningful saving
    for name in LOW_REUSE:
        assert max(decreases[name].values()) < 0.05, name
    # the headline: a large maximum decrease on a high-reuse workload
    best = max(max(d.values()) for d in decreases.values())
    assert 0.35 < best < 0.70  # paper: 48 %
    # average saving across all workload/policy combinations is moderate
    all_vals = [v for d in decreases.values() for v in d.values()]
    assert 0.05 < sum(all_vals) / len(all_vals) < 0.35  # paper: 12 %
