"""Figure 9: attained GFLOPS per workload per policy.

Shape reproduced from the paper:

* a large maximum speedup on raytrace (paper: 1.88x, strict);
* medium/high-reuse workloads speed up under RDA;
* water_spatial *slows down* slightly (paper: −6 %), BLAS-1 does not gain;
* BLAS-2 shows the smallest improvement (paper: at most 1.02x).
"""

import pytest

from repro.experiments.metrics import compare_all
from repro.experiments.report import render_figure9
from repro.experiments.runner import run_policies
from repro.workloads.suite import workload_by_name
from .conftest import one_round


@pytest.mark.paper_figure("figure9")
def test_fig9_gflops(benchmark, full_sweep):
    one_round(benchmark, run_policies, lambda: workload_by_name("Raytrace"))
    print("\n" + render_figure9(full_sweep))

    speedups = {
        name: {p: c.speedup for p, c in compare_all(name, reports).items()}
        for name, reports in full_sweep.items()
    }

    # raytrace delivers the maximum speedup, under the strict policy
    best_workload = max(speedups, key=lambda n: max(speedups[n].values()))
    assert best_workload == "Raytrace"
    best = max(speedups["Raytrace"].values())
    assert 1.5 < best < 2.4  # paper: 1.88x

    # high-reuse workloads gain
    for name in ("Water_nsq", "Ocean_cp", "Raytrace"):
        assert max(speedups[name].values()) > 1.1, name

    # low-reuse / cache-fitting workloads do not gain (within a few %)
    for name in ("BLAS-1", "BLAS-2", "Water_sp"):
        assert max(speedups[name].values()) < 1.08, name

    # water_spatial: RDA slightly *hurts* (paper: −6 %)
    assert min(speedups["Water_sp"].values()) < 1.0

    # average speedup across all runs is modest (paper: 1.16x)
    all_vals = [v for d in speedups.values() for v in d.values()]
    avg = sum(all_vals) / len(all_vals)
    assert 1.0 < avg < 1.4
