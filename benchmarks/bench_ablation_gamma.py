"""Ablation: the LRU-cliff exponent of the contention model.

DESIGN.md §5 models the hot fraction as ``(share/wss) ** γ`` with γ = 2.
γ = 1 is the naive proportional model; larger γ makes shared-cache hit
rates collapse harder once working sets overflow.  The figure-13 knee (the
8000-molecule input *dropping* from 6 to 12 instances) only appears for
γ > 1 — with the proportional model, doubling the instances roughly
doubles per-instance misses and aggregate throughput stays flat instead of
falling, which is not what the paper measured.
"""

import pytest

from repro.config import default_machine_config
from repro.mem.contention import SharedLlcModel
from repro.perf.stat import PerfStat
from repro.sim.kernel import Kernel
from repro.sim.machine import Machine
from repro.workloads.splash2.water_nsquared import interference_workload
from .conftest import one_round


def gflops_with_gamma(gamma: float, n_instances: int) -> float:
    config = default_machine_config()
    machine = Machine(config, llc_model=SharedLlcModel(config.llc_capacity, gamma=gamma))
    kernel = Kernel(config=config, machine=machine)
    stat = PerfStat(kernel)
    kernel.launch(interference_workload(8000, n_instances))
    stat.start()
    kernel.run()
    return stat.stop().gflops


def sweep_gamma():
    return {
        gamma: {n: gflops_with_gamma(gamma, n) for n in (6, 12)}
        for gamma in (1.0, 2.0, 3.0)
    }


@pytest.mark.paper_figure("ablation-gamma")
def test_gamma_controls_the_interference_cliff(benchmark):
    grid = one_round(benchmark, sweep_gamma)
    print()
    for gamma, row in grid.items():
        drop = 1.0 - row[12] / row[6]
        print(f"  gamma={gamma}:  6 inst {row[6]:6.2f} GF   12 inst {row[12]:6.2f} GF"
              f"   drop {drop:+.0%}")

    drop = {g: 1.0 - row[12] / row[6] for g, row in grid.items()}
    # proportional model: only a mild drop (bandwidth + reloads), far from
    # the paper's "significantly drops" knee
    assert drop[1.0] < 0.20
    # the committed model reproduces the paper's significant drop
    assert 0.20 < drop[2.0] < 0.50
    # and the cliff deepens with gamma, with clear separation from gamma=1
    assert drop[1.0] + 0.10 < drop[2.0] < drop[3.0]
