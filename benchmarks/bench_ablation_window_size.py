"""Ablation: profiler sampling-window granularity (§2.4).

The paper tunes its profiler "by manually experimenting with different
granularities of window sizes".  This study shows why that knob matters:
sweeping the window size on water_nsquared's pair sweep,

* a window much smaller than one sweep row sees every line touched once —
  the ≥2-touch working set collapses toward zero;
* around the right granularity the measured WSS stabilizes at the hot
  slab (the plateau the paper's manual search looks for);
* far larger windows begin to merge distinct behaviours (and eventually
  starve the detector of windows entirely).
"""

import pytest

from repro.profiler.sampling import sample_windows
from repro.workloads.tracegen import water_pp1_trace
from .conftest import one_round

WINDOWS = (100_000, 300_000, 1_000_000, 3_000_000)


def sweep_window_sizes():
    trace = water_pp1_trace(32_768, n_accesses=4_000_000)
    out = {}
    for w in WINDOWS:
        profile = sample_windows(trace, w)
        out[w] = {
            "wss_mb": profile.mean_wss_bytes / 1e6,
            "reuse_ratio": profile.mean_reuse_ratio,
            "n_windows": len(profile),
        }
    return out


@pytest.mark.paper_figure("ablation-window-size")
def test_window_granularity_sensitivity(benchmark):
    rows = one_round(benchmark, sweep_window_sizes)
    print()
    for w, r in rows.items():
        print(
            f"  window {w:>9,} instr: WSS {r['wss_mb']:6.2f} MB  "
            f"reuse {r['reuse_ratio']:5.1f}  ({r['n_windows']} windows)"
        )

    # too fine: the ≥2-touch criterion misses the slab almost entirely
    assert rows[100_000]["wss_mb"] < 0.25 * rows[1_000_000]["wss_mb"]
    # the plateau: 1M and 3M windows agree on the hot set within ~35 %
    assert rows[3_000_000]["wss_mb"] == pytest.approx(
        rows[1_000_000]["wss_mb"], rel=0.35
    )
    # measured WSS grows monotonically toward the plateau
    wss = [rows[w]["wss_mb"] for w in WINDOWS]
    assert wss == sorted(wss)