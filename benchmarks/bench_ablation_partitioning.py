"""Extension study: cache partitioning (the paper's §6 future work).

Scenario, verbatim from the paper: "if an application whose working set
size is larger than the LLC is scheduled (e.g., streaming applications),
we can partition the cache and give this application only a small portion
of the cache because it would fetch most data from main memory
regardless."

We co-run cache-hungry dgemm processes with large streaming scans (20 MB
footprint, ~no reuse) and compare

* the stock shared LLC under the default policy — the scans' transient
  occupancy washes the dgemm blocks out of the cache;
* RDA: Strict on the shared LLC — the published system handles scans
  badly: a 20 MB declared demand oversubscribes the whole cache, so
  admission serializes everything behind each scan;
* the partitioned LLC + partition-aware RDA (the future-work design):
  scans confined to a 1/8 pen where they lose nothing, dgemm admitted
  against the protected 7/8.

Expected shape: partitioning wins on both throughput and energy.
"""

import pytest

from repro.core.partitioning import partitioned_kernel
from repro.core.policy import StrictPolicy
from repro.core.progress_period import ReuseLevel
from repro.experiments.runner import run_workload
from repro.perf.stat import PerfStat
from repro.workloads.base import Phase, PpSpec, ProcessSpec, Workload
from repro.workloads.blas import kernel_process
from .conftest import one_round

MB = 1_000_000


def scan_process() -> ProcessSpec:
    """A streaming scan whose working set exceeds the whole LLC."""
    wss = 20 * MB
    phase = Phase(
        name="scan",
        instructions=30_000_000,
        flops_per_instr=0.1,
        mem_refs_per_instr=0.5,
        llc_refs_per_memref=0.125,
        wss_bytes=wss,
        reuse=0.05,
        pp=PpSpec(demand_bytes=wss, reuse=ReuseLevel.LOW),
        memory_overlap=0.85,  # prefetched unit-stride stream
    )
    return ProcessSpec(name="scan", program=[phase])


def mixed_workload():
    procs = []
    for i in range(12):
        procs.append(kernel_process("dgemm"))
        if i % 2 == 0:
            procs.append(scan_process())
    return Workload(name="dgemm+scans", processes=procs)


def run_partitioned():
    kernel = partitioned_kernel(policy=StrictPolicy())
    stat = PerfStat(kernel)
    kernel.launch(mixed_workload())
    stat.start()
    kernel.run(max_events=5_000_000)
    return stat.stop()


def sweep_partitioning():
    return {
        "shared / default": run_workload(mixed_workload(), None),
        "shared / strict": run_workload(mixed_workload(), StrictPolicy()),
        "partitioned / strict": run_partitioned(),
    }


@pytest.mark.paper_figure("extension-partitioning")
def test_partitioning_protects_reusable_working_sets(benchmark):
    results = one_round(benchmark, sweep_partitioning)
    print()
    for name, r in results.items():
        print(
            f"  {name:<22} {r.gflops:6.2f} GFLOPS  {r.system_j:6.1f} J  "
            f"wall {r.wall_s * 1e3:7.1f} ms"
        )

    shared_default = results["shared / default"]
    shared_strict = results["shared / strict"]
    partitioned = results["partitioned / strict"]

    # partitioning beats the stock shared cache on every axis; the big win
    # is energy (the protected dgemms stop fetching from DRAM)
    assert partitioned.gflops > shared_default.gflops
    assert partitioned.wall_s < shared_default.wall_s
    assert partitioned.system_j < 0.85 * shared_default.system_j
    # and it fixes the published shared-LLC RDA's pathology: a declared
    # demand larger than the cache serializes the whole machine there
    assert shared_strict.wall_s > 2.0 * partitioned.wall_s
    assert partitioned.gflops > 2.0 * shared_strict.gflops
