"""Figure 12: working-set growth across input scales + log regression.

The paper profiles the top two progress periods of water_nsquared and
ocean_cp at 1x/2x/4x/8x inputs, observes that "the working set size does
not grow linearly with respect to the input size, but rather in the shape
of a logarithmic curve", fits a logarithmic regression on the first three
scales and predicts the fourth with accuracies 92 % / 80 % / 95 % / 94 %.
"""

import pytest

from repro.experiments.figures import figure12_wss_prediction
from repro.experiments.report import render_figure12
from .conftest import one_round

#: the paper's reported accuracies per curve
PAPER_ACCURACY = {"Wnsq PP1": 0.92, "Wnsq PP2": 0.80, "Ocp PP1": 0.95, "Ocp PP2": 0.94}


@pytest.mark.paper_figure("figure12")
def test_fig12_wss_prediction(benchmark):
    curves = one_round(benchmark, figure12_wss_prediction)
    print("\n" + render_figure12(curves))

    for c in curves:
        m = c.measured_mb
        # growth with input size
        assert m[0] < m[-1], c.name
        # sublinear ("logarithmic curve"): 8x input gives far less than 8x wss
        assert m[-1] < 8 * m[0] * 0.9, c.name
        # the fitted predictor is usable: same band as the paper's 80-95 %
        assert c.accuracy >= 0.70, (c.name, c.accuracy)
        # predictions track measurements on the fitted points too
        for meas, pred in zip(m[:3], c.predicted_mb[:3]):
            assert pred == pytest.approx(meas, rel=0.35), c.name

    # at least three of four curves reach the >= 80 % band the paper reports
    good = [c for c in curves if c.accuracy >= 0.80]
    assert len(good) >= 3
