"""Related-work baseline: ITKO static-profile co-scheduling (§5).

The paper's differentiation from Kihm et al.'s ITKO scheduler: "[our
approach] maps the behavior to a static code location ... allowing our
scheduler to be less reliant on input sensitivity."  Test exactly that:

* at the *profiled* input (1x), the static-profile baseline and the
  demand-aware scheduler make equivalent decisions — both beat the Linux
  default comfortably;
* at a *scaled* input (2x molecules), ITKO's profile is stale: it still
  co-schedules four 1x-sized working sets, but the sets have grown and
  collectively thrash the LLC.  RDA's just-in-time declarations scale with
  the input and keep the cache warm.
"""

import pytest

from repro.core.itko import ItkoScheduler, profile_workload
from repro.core.policy import StrictPolicy
from repro.core.rda import RdaScheduler
from repro.perf.stat import PerfStat
from repro.sim.kernel import Kernel
from repro.workloads.splash2 import water_nsquared_workload
from .conftest import one_round


def run_with(extension, workload):
    kernel = Kernel(extension=extension)
    stat = PerfStat(kernel)
    kernel.launch(workload)
    stat.start()
    kernel.run(max_events=5_000_000)
    return stat.stop()


def sweep_itko():
    profile = profile_workload(water_nsquared_workload())  # profiled at 1x
    out = {}
    for scale, tag in ((1.0, "1x"), (2.0, "2x")):
        wl = lambda: water_nsquared_workload(input_scale=scale)  # noqa: E731
        out[f"default @{tag}"] = run_with(None, wl())
        out[f"itko @{tag}"] = run_with(ItkoScheduler(profile), wl())
        out[f"rda @{tag}"] = run_with(RdaScheduler(policy=StrictPolicy()), wl())
    return out


@pytest.mark.paper_figure("baseline-itko")
def test_rda_less_input_sensitive_than_static_profiles(benchmark):
    results = one_round(benchmark, sweep_itko)
    print()
    for name, r in results.items():
        print(
            f"  {name:<14} {r.gflops:6.2f} GFLOPS  {r.system_j:6.1f} J  "
            f"wall {r.wall_s * 1e3:7.1f} ms"
        )

    # at the profiled input both approaches beat the default similarly
    assert results["itko @1x"].gflops > 1.2 * results["default @1x"].gflops
    assert results["rda @1x"].gflops == pytest.approx(
        results["itko @1x"].gflops, rel=0.15
    )

    # at the scaled input the static profile is stale: RDA clearly wins
    rda_gain = results["rda @2x"].gflops / results["default @2x"].gflops
    itko_gain = results["itko @2x"].gflops / results["default @2x"].gflops
    assert rda_gain > itko_gain * 1.15
    assert results["rda @2x"].system_j < results["itko @2x"].system_j
