"""Ablation: waitlist admission order (FIFO-with-skip vs strict FIFO).

The paper's prototype scans the whole waitlist when capacity frees
("attempting to schedule any waiting threads previously blocked"), so a
small period can slip past a large head waiter.  The alternative — strict
arrival order — trades utilization for fairness.  This study runs a
mixed-demand workload (large 6 MB periods among small 1 MB ones) under
both drain orders and measures throughput *and* the per-thread waiting
distribution from the scheduling trace.
"""

import pytest

from repro.core.policy import StrictPolicy
from repro.core.rda import RdaScheduler
from repro.perf.sched import analyze_trace
from repro.perf.stat import PerfStat
from repro.sim.kernel import Kernel
from repro.sim.tracing import KernelTracer
from repro.workloads.base import Workload
from .conftest import one_round

from tests.conftest import make_phase  # reuse the toy phase builder


def mixed_demand_workload():
    from repro.workloads.base import ProcessSpec

    procs = []
    for k in range(36):
        big = k % 3 == 0
        phase = make_phase(
            name="big" if big else "small",
            wss_mb=6.0 if big else 1.0,
            instructions=6_000_000,
        )
        procs.append(ProcessSpec(name="big" if big else "small", program=[phase] * 2))
    return Workload(name="mixed-demand", processes=procs)


def run_with(strict_fifo: bool):
    scheduler = RdaScheduler(
        policy=StrictPolicy(), strict_fifo_waitlist=strict_fifo
    )
    kernel = Kernel(extension=scheduler)
    tracer = KernelTracer()
    kernel.tracer = tracer
    stat = PerfStat(kernel)
    kernel.launch(mixed_demand_workload())
    stat.start()
    kernel.run(max_events=5_000_000)
    return stat.stop(), analyze_trace(tracer)


def sweep_orders():
    skip_report, skip_sched = run_with(strict_fifo=False)
    fifo_report, fifo_sched = run_with(strict_fifo=True)
    return {
        "fifo-skip": (skip_report, skip_sched),
        "fifo-strict": (fifo_report, fifo_sched),
    }


@pytest.mark.paper_figure("ablation-waitlist")
def test_admission_order_tradeoff(benchmark):
    results = one_round(benchmark, sweep_orders)
    print()
    for name, (report, sched) in results.items():
        print(
            f"  {name:<12} wall {report.wall_s * 1e3:7.1f} ms  "
            f"{report.gflops:5.2f} GFLOPS  "
            f"max pp-wait {sched.max_pp_wait_s * 1e3:7.1f} ms  "
            f"total pp-wait {sched.total_pp_wait_s * 1e3:8.1f} ms"
        )
    skip_report, skip_sched = results["fifo-skip"]
    fifo_report, fifo_sched = results["fifo-strict"]

    # both orders complete the same work in about the same makespan —
    # the drain order is not a throughput lever on this machine
    assert skip_report.flops == pytest.approx(fifo_report.flops, rel=1e-6)
    assert skip_report.wall_s == pytest.approx(fifo_report.wall_s, rel=0.05)
    # the real difference: skipping sharply reduces aggregate waiting
    # (small periods stop queueing behind large head waiters)
    assert skip_sched.total_pp_wait_s < 0.8 * fifo_sched.total_pp_wait_s