"""Shared fixtures for the benchmark harness.

The figures 7-10 benchmarks all view the same (workload x policy) sweep, so
the sweep is computed once per session and each figure's benchmark measures
its own end-to-end regeneration on a representative subset.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figures7to10
from repro.workloads.suite import WORKLOAD_NAMES


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_figure(name): benchmark regenerates this figure/table"
    )


@pytest.fixture(scope="session")
def full_sweep():
    """The complete Table 2 x {default, strict, compromise} sweep."""
    return figures7to10(WORKLOAD_NAMES)


def one_round(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
