"""Shared fixtures for the benchmark harness.

The figures 7-10 benchmarks all view the same (workload x policy) sweep, so
the sweep is computed once per session and each figure's benchmark measures
its own end-to-end regeneration on a representative subset.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.figures import figures7to10
from repro.workloads.suite import WORKLOAD_NAMES


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_figure(name): benchmark regenerates this figure/table"
    )


def grid_options() -> dict:
    """Parallel-fleet knobs for the shared sweep, from the environment.

    ``REPRO_BENCH_JOBS`` fans the (workload × policy) grid across that many
    worker processes; ``REPRO_BENCH_CACHE`` names a result-cache directory
    so repeated benchmark sessions skip already-measured cells.  Both
    default off, keeping the benchmarks' timing semantics unchanged.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache = os.environ.get("REPRO_BENCH_CACHE") or None
    return {"jobs": jobs, "cache": cache}


@pytest.fixture(scope="session")
def full_sweep():
    """The complete Table 2 x {default, strict, compromise} sweep."""
    return figures7to10(WORKLOAD_NAMES, **grid_options())


def one_round(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
