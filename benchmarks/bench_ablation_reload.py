"""Ablation: the figure-1 cold-cache reload cost.

Figure 1's motivation is that round-robin scheduling makes processes
"spend extra time and energy by having to reload their data from memory
into cache".  This ablation disables the reload model and shows that (a)
the default scheduler's oversubscribed runs get measurably faster without
it — i.e. the model does charge round-robin for reloads — and (b) the RDA
benefit does *not* hinge on it: the LLC-share contention effect alone
preserves the paper's ordering.
"""

from dataclasses import replace

import pytest

from repro.config import default_machine_config
from repro.core.policy import StrictPolicy
from repro.experiments.runner import run_workload
from repro.workloads.splash2 import raytrace_workload
from .conftest import one_round


def with_reload(enabled: bool):
    base = default_machine_config()
    return replace(base, scheduler=replace(base.scheduler, model_cache_reload=enabled))


def sweep_reload():
    out = {}
    for enabled in (True, False):
        cfg = with_reload(enabled)
        out[enabled] = {
            "default": run_workload(raytrace_workload(), None, config=cfg),
            "strict": run_workload(raytrace_workload(), StrictPolicy(), config=cfg),
        }
    return out


@pytest.mark.paper_figure("ablation-reload")
def test_reload_cost_contribution(benchmark):
    results = one_round(benchmark, sweep_reload)
    print()
    for enabled, row in results.items():
        speedup = row["strict"].gflops / row["default"].gflops
        print(
            f"  reload={'on ' if enabled else 'off'}  "
            f"default {row['default'].gflops:6.2f} GF  "
            f"strict {row['strict'].gflops:6.2f} GF  speedup {speedup:4.2f}x"
        )

    on, off = results[True], results[False]
    # reloads hurt the time-sharing default scheduler specifically
    assert off["default"].wall_s < on["default"].wall_s
    # strict barely time-shares, so it is nearly reload-insensitive
    assert off["strict"].wall_s == pytest.approx(on["strict"].wall_s, rel=0.05)
    # the headline ordering survives without the reload model
    assert off["strict"].gflops > 1.5 * off["default"].gflops
    assert off["strict"].system_j < 0.7 * off["default"].system_j
