"""Ablation: the compromise policy's oversubscription factor.

The paper fixes the factor at 2, "shown to be effective in attaining the
best balance between energy efficiency and performance" (§3.3).  This
sweep reproduces that design-space study on water_nsquared: factor 1.0 is
RDA: Strict, large factors converge to the Linux default, and intermediate
factors trade LLC efficiency for concurrency.
"""

import pytest

from repro.core.policy import CompromisePolicy
from repro.experiments.runner import run_policies, run_workload
from repro.workloads.splash2 import water_nsquared_workload
from .conftest import one_round

FACTORS = (1.0, 1.5, 2.0, 3.0, 6.0)


def sweep_factors():
    results = {}
    baseline = run_workload(water_nsquared_workload(), None)
    results["default"] = baseline
    for x in FACTORS:
        results[f"x={x}"] = run_workload(
            water_nsquared_workload(), CompromisePolicy(oversubscription=x)
        )
    return results


@pytest.mark.paper_figure("ablation-oversubscription")
def test_oversubscription_factor_sweep(benchmark):
    results = one_round(benchmark, sweep_factors)
    print()
    for name, r in results.items():
        print(
            f"  {name:<8} {r.gflops:6.2f} GFLOPS  {r.system_j:6.1f} J  "
            f"{r.gflops_per_watt:6.3f} GFLOPS/W"
        )
    base = results["default"]
    strictish = results["x=1.0"]
    loosest = results[f"x={FACTORS[-1]}"]

    # factor 1.0 behaves like RDA: Strict — big energy savings
    assert strictish.system_j < 0.7 * base.system_j
    # a huge factor converges to the default scheduler's behaviour
    assert loosest.system_j == pytest.approx(base.system_j, rel=0.15)
    assert loosest.gflops == pytest.approx(base.gflops, rel=0.15)
    # efficiency degrades monotonically as the factor loosens on this
    # high-reuse, heavily oversubscribed workload
    effs = [results[f"x={x}"].gflops_per_watt for x in FACTORS]
    assert all(a >= b * 0.98 for a, b in zip(effs, effs[1:]))
