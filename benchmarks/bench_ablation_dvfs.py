"""Extension study: demand-aware scheduling vs frequency tuning.

The paper's introduction cites Kambadur & Kim's experimental survey:
"effective parallelization can lead to better energy savings compared to
Linux's frequency tuning algorithms".  With the DVFS substrate in
``repro.energy.dvfs`` we can test that comparison directly on the paper's
headline workload:

* Linux default + performance governor (the paper's baseline),
* Linux default + ondemand governor (frequency tuning),
* Linux default + powersave (the most aggressive frequency tuning),
* RDA: Strict + performance governor (the paper's system).

Expected shape: frequency tuning saves little on a saturated machine
(utilization pins the ondemand governor at maximum) and trades performance
away under powersave, while the scheduling-based approach saves far more
energy *and* runs faster.
"""

import pytest

from repro.core.policy import StrictPolicy
from repro.core.rda import RdaScheduler
from repro.energy.dvfs import OndemandGovernor, PerformanceGovernor, PowersaveGovernor
from repro.perf.stat import PerfStat
from repro.sim.kernel import Kernel
from repro.workloads.splash2 import water_nsquared_workload
from .conftest import one_round


def run(policy=None, governor=None):
    scheduler = RdaScheduler(policy=policy) if policy else None
    kernel = Kernel(extension=scheduler, governor=governor)
    stat = PerfStat(kernel)
    kernel.launch(water_nsquared_workload())
    stat.start()
    kernel.run(max_events=5_000_000)
    return stat.stop()


def sweep_dvfs():
    return {
        "default + performance": run(None, PerformanceGovernor()),
        "default + ondemand": run(None, OndemandGovernor()),
        "default + powersave": run(None, PowersaveGovernor(min_scale=0.5)),
        "RDA strict + performance": run(StrictPolicy(), PerformanceGovernor()),
    }


@pytest.mark.paper_figure("extension-dvfs")
def test_scheduling_beats_frequency_tuning(benchmark):
    results = one_round(benchmark, sweep_dvfs)
    print()
    for name, r in results.items():
        print(
            f"  {name:<26} {r.gflops:6.2f} GFLOPS  {r.system_j:6.1f} J  "
            f"wall {r.wall_s * 1e3:7.1f} ms"
        )
    base = results["default + performance"]
    ondemand = results["default + ondemand"]
    powersave = results["default + powersave"]
    rda = results["RDA strict + performance"]

    # a saturated machine pins ondemand at max frequency: ~no savings
    assert ondemand.system_j == pytest.approx(base.system_j, rel=0.05)
    # powersave saves some energy but costs performance (the workload is
    # partly memory-bound, so halving the clock costs less than 2x)
    assert powersave.wall_s > 1.1 * base.wall_s
    # the scheduling-based approach saves more energy than any frequency
    # tuning here *and* improves performance — the Kambadur & Kim shape
    assert rda.system_j < powersave.system_j
    assert rda.system_j < 0.7 * base.system_j
    assert rda.gflops > base.gflops
