"""Table 2: the eight evaluated workloads.

Regenerates the workload inventory (process counts, threads per process,
per-period working sets and reuse levels) and checks it row by row against
the paper's table.
"""

import pytest

from repro.experiments.figures import table2_rows

#: the paper's Table 2, transcribed
PAPER_TABLE2 = {
    "BLAS-1": dict(n=96, t=1, wss={0.6}, reuse={"low"}),
    "BLAS-2": dict(n=96, t=1, wss={0.6}, reuse={"med"}),
    "BLAS-3": dict(n=96, t=1, wss={1.6, 2.4, 3.2}, reuse={"high"}),
    "Water_sp": dict(n=12, t=2, wss={1.6, 1.3}, reuse={"low"}),
    "Water_nsq": dict(n=12, t=2, wss={3.6, 3.7}, reuse={"high"}),
    "Ocean_cp": dict(n=48, t=2, wss={2.1, 0.76, 1.5, 0.59}, reuse={"high", "med"}),
    "Raytrace": dict(n=48, t=4, wss={5.1, 5.2}, reuse={"high"}),
    "Volrend": dict(n=48, t=4, wss={1.8, 1.7}, reuse={"high"}),
}


@pytest.mark.paper_figure("table2")
def test_table2_workloads(benchmark):
    rows = benchmark(table2_rows)
    print()
    header = f"{'Workload':<10} {'#Proc':>5} {'Thr/Proc':>8}  {'WSS (MB)':<22} Reuse"
    print(header)
    for r in rows:
        print(
            f"{r['workload']:<10} {r['n_processes']:>5} {r['threads_per_proc']:>8}"
            f"  {str(r['wss_mb']):<22} {', '.join(r['reuses'])}"
        )
    by_name = {r["workload"]: r for r in rows}
    for name, expect in PAPER_TABLE2.items():
        row = by_name[name]
        assert row["n_processes"] == expect["n"], name
        assert row["threads_per_proc"] == expect["t"], name
        assert set(row["wss_mb"]) == expect["wss"], name
        assert set(row["reuses"]) == expect["reuse"], name
